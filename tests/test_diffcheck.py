"""Results-drift checking."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.diffcheck import (
    Drift,
    compare_results_dirs,
    summarize_drift,
)


def write_results(directory, experiment, filename, header, rows):
    exp_dir = directory / experiment
    exp_dir.mkdir(parents=True, exist_ok=True)
    lines = [",".join(header)] + [",".join(str(v) for v in row) for row in rows]
    (exp_dir / filename).write_text("\n".join(lines) + "\n")


def test_identical_dirs_have_no_drift(tmp_path):
    for side in ("a", "b"):
        write_results(
            tmp_path / side, "fig1", "curve_x.csv", ["t", "UCB"], [[100, 0.5]]
        )
    drifts, problems = compare_results_dirs(tmp_path / "a", tmp_path / "b")
    assert drifts == []
    assert problems == []
    assert "identical" in summarize_drift(drifts, problems)


def test_value_drift_detected_and_ranked(tmp_path):
    write_results(
        tmp_path / "a", "fig1", "curve_x.csv", ["t", "UCB", "TS"],
        [[100, 0.5, 0.1], [200, 0.6, 0.1]],
    )
    write_results(
        tmp_path / "b", "fig1", "curve_x.csv", ["t", "UCB", "TS"],
        [[100, 0.5, 0.2], [200, 0.6, 0.1]],
    )
    drifts, problems = compare_results_dirs(tmp_path / "a", tmp_path / "b")
    assert problems == []
    assert len(drifts) == 1
    drift = drifts[0]
    assert drift.column == "TS"
    assert drift.step == "100"
    assert drift.relative_change == pytest.approx(1.0)
    assert "DRIFT" in summarize_drift(drifts, problems)


def test_missing_experiment_and_file_reported(tmp_path):
    write_results(tmp_path / "a", "fig1", "curve_x.csv", ["t", "U"], [[1, 1.0]])
    write_results(tmp_path / "a", "fig2", "curve_y.csv", ["t", "U"], [[1, 1.0]])
    write_results(tmp_path / "b", "fig1", "curve_z.csv", ["t", "U"], [[1, 1.0]])
    drifts, problems = compare_results_dirs(tmp_path / "a", tmp_path / "b")
    assert any("fig2 missing" in p for p in problems)
    assert any("curve_x.csv missing" in p for p in problems)


def test_timing_tables_are_skipped(tmp_path):
    write_results(
        tmp_path / "a", "tab5", "table_avg_time_sec_round.csv",
        ["Algorithm", "V100"], [["UCB", 0.001]],
    )
    write_results(
        tmp_path / "b", "tab5", "table_avg_time_sec_round.csv",
        ["Algorithm", "V100"], [["UCB", 0.9]],
    )
    drifts, _ = compare_results_dirs(tmp_path / "a", tmp_path / "b")
    assert drifts == []


def test_non_numeric_cells_are_ignored(tmp_path):
    write_results(
        tmp_path / "a", "tab7", "table_x.csv", ["Algorithm", "u1"],
        [["UCB", 0.9], ["note", "text"]],
    )
    write_results(
        tmp_path / "b", "tab7", "table_x.csv", ["Algorithm", "u1"],
        [["UCB", 0.9], ["note", "other"]],
    )
    drifts, problems = compare_results_dirs(tmp_path / "a", tmp_path / "b")
    assert drifts == []


def test_zero_baseline_drift_is_infinite(tmp_path):
    drift = Drift("e", "f", "c", "1", baseline=0.0, candidate=1.0)
    assert drift.relative_change == float("inf")
    assert Drift("e", "f", "c", "1", 0.0, 0.0).relative_change == 0.0


def test_missing_directories_raise(tmp_path):
    with pytest.raises(ConfigurationError):
        compare_results_dirs(tmp_path / "nope", tmp_path)
    with pytest.raises(ConfigurationError):
        compare_results_dirs(tmp_path, tmp_path / "nope")


def test_real_rerun_is_drift_free(tmp_path):
    """End-to-end: the same experiment run twice produces no drift."""
    from repro.experiments.figures import figure2
    from repro.experiments.reporting import save_result

    save_result(figure2(horizon=150), tmp_path / "a")
    save_result(figure2(horizon=150), tmp_path / "b")
    drifts, problems = compare_results_dirs(tmp_path / "a", tmp_path / "b")
    assert drifts == []
    assert problems == []
