"""Public-API hygiene: exports resolve, __all__ is accurate, docstrings exist."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.bandits",
    "repro.baselines",
    "repro.datasets",
    "repro.ebsn",
    "repro.experiments",
    "repro.extensions",
    "repro.io",
    "repro.linalg",
    "repro.mab",
    "repro.metrics",
    "repro.oracle",
    "repro.simulation",
    "repro.theory",
]


def iter_all_submodules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


def test_every_submodule_imports():
    for name in iter_all_submodules():
        importlib.import_module(name)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_dunder_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported, f"{module_name} has no __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_top_level_all_is_sorted_and_unique():
    assert sorted(repro.__all__) == list(repro.__all__)
    assert len(set(repro.__all__)) == len(repro.__all__)


def test_every_module_has_a_docstring():
    for name in iter_all_submodules():
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"


def test_every_public_callable_has_a_docstring():
    missing = []
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if callable(obj) and not obj.__doc__:
                missing.append(f"{module_name}.{name}")
    assert not missing, f"missing docstrings: {missing}"


def _documented_somewhere(cls, method_name):
    """True when the method, or the interface it overrides, has a docstring."""
    for base in cls.__mro__:
        method = base.__dict__.get(method_name)
        if method is not None and getattr(method, "__doc__", None):
            return True
    return False


def test_public_classes_document_their_public_methods():
    """Every public method is documented on the class or the interface
    it implements (overrides of a documented base method count)."""
    undocumented = []
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(
                obj, predicate=inspect.isfunction
            ):
                if method_name.startswith("_"):
                    continue
                if not _documented_somewhere(obj, method_name):
                    undocumented.append(f"{module_name}.{name}.{method_name}")
    assert not undocumented, f"undocumented methods: {sorted(set(undocumented))}"


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"
