"""Decision flight recorder guarantees.

The tentpole promises, tested directly: recording changes no result
bit, ``--jobs N`` produces byte-identical logs, a SIGKILL'd run leaves
a longest-valid-prefix log, replay reproduces rewards bit-for-bit (and
pinpoints tampering), and ``fasea obs diff`` flags choice drift.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.datasets.synthetic import build_world
from repro.exceptions import ConfigurationError, SchemaError
from repro.obs.core import Instrumentation, use
from repro.obs.flight import (
    DECISIONS_FILENAME,
    FLIGHT_SCHEMA_VERSION,
    FlightBuffer,
    FlightRecorder,
    cell_record,
    decision_record,
    flight_digest,
    load_flight,
    make_run_header,
    policy_digests,
    record_line,
    rng_fingerprint,
)
from repro.obs.replay import build_policy_from_spec, replay_flight, render_replay_report
from repro.obs.trace import write_trace_jsonl
from repro.parallel import PolicyRunCell, run_policy_run_cell, run_work_units
from repro.simulation.runner import run_policy

REPO_ROOT = Path(__file__).resolve().parents[1]

HORIZON = 40
RUN_SEED = 0
POLICY_SEED = 3


def _specs(*names):
    return [{"name": name, "seed": POLICY_SEED} for name in names]


def _record_log(directory, config, specs, horizon=HORIZON, run_seed=RUN_SEED):
    """Record one mode='policies' log the way quickstart --flight does."""
    world = build_world(config)
    recorder = FlightRecorder(
        directory, run=make_run_header(config, horizon, run_seed, specs)
    )
    histories = {}
    for spec in specs:
        policy = build_policy_from_spec(spec, world)
        histories[spec["name"]] = run_policy(
            policy, world, horizon=horizon, run_seed=run_seed, flight=recorder
        )
    recorder.close()
    return histories


# ----------------------------------------------------------------------
# Recorder basics
# ----------------------------------------------------------------------
def test_recorder_writes_header_then_one_record_per_round(tmp_path, small_config):
    _record_log(tmp_path, small_config, _specs("UCB"))
    log = load_flight(tmp_path)
    assert log.records[0]["kind"] == "header"
    assert log.records[0]["schema_version"] == FLIGHT_SCHEMA_VERSION
    header = log.header
    assert header["mode"] == "policies"
    assert header["horizon"] == HORIZON
    decisions = log.decisions
    assert [r["t"] for r in decisions] == list(range(1, HORIZON + 1))
    first = decisions[0]
    # UCB logs its candidate scores, bound widths and a sure propensity.
    assert len(first["scores"]) == small_config.num_events
    assert len(first["widths"]) == small_config.num_events
    assert first["propensity"] == 1.0
    assert set(first["oracle"]) == {
        "candidates", "visited", "conflict_rejections",
        "capacity_rejections", "arranged",
    }
    assert first["reward"] == pytest.approx(sum(first["rewards"]))


def test_egreedy_records_coin_propensity_and_rng(tmp_path, small_config):
    _record_log(tmp_path, small_config, _specs("eGreedy"))
    decisions = load_flight(tmp_path).decisions
    assert all(isinstance(r["explore"], bool) for r in decisions)
    assert {r["propensity"] for r in decisions} <= {0.1, 0.9}
    assert all(len(r["rng"]) == 16 for r in decisions)
    explores = {r["explore"] for r in decisions}
    assert explores == {True, False}  # the coin fired both ways in 40 rounds


def test_ts_records_theta_sample_but_no_propensity(tmp_path, small_config):
    _record_log(tmp_path, small_config, _specs("TS"))
    first = load_flight(tmp_path).decisions[0]
    assert len(first["theta_sample"]) == small_config.dim
    assert first["propensity"] is None  # continuous density is not logged
    assert "rng" in first


def test_recording_does_not_change_results(small_config):
    world = build_world(small_config)
    plain = run_policy(
        build_policy_from_spec({"name": "eGreedy", "seed": POLICY_SEED}, world),
        world, horizon=HORIZON, run_seed=RUN_SEED,
    )
    recorded = run_policy(
        build_policy_from_spec({"name": "eGreedy", "seed": POLICY_SEED}, world),
        world, horizon=HORIZON, run_seed=RUN_SEED, flight=FlightBuffer(),
    )
    assert np.array_equal(plain.rewards, recorded.rewards)
    assert np.array_equal(plain.arranged, recorded.arranged)


def test_rng_fingerprint_reads_without_advancing():
    rng = np.random.default_rng(5)
    before = rng_fingerprint(rng)
    assert rng_fingerprint(rng) == before  # fingerprinting is passive
    rng.random()
    assert rng_fingerprint(rng) != before


def test_recorder_refuses_use_after_close(tmp_path):
    recorder = FlightRecorder(tmp_path)
    recorder.record(cell_record(0))
    recorder.close()
    recorder.close()  # idempotent
    with pytest.raises(ConfigurationError):
        recorder.record(cell_record(1))
    with pytest.raises(ConfigurationError):
        FlightRecorder(tmp_path, fsync_every_records=0)


def test_recorder_truncates_stale_logs(tmp_path):
    (tmp_path / DECISIONS_FILENAME).write_text('{"kind": "stale"}\n')
    with FlightRecorder(tmp_path) as recorder:
        recorder.record(cell_record(7))
    records = load_flight(tmp_path).records
    assert records == [{"kind": "cell", "seed": 7}]


# ----------------------------------------------------------------------
# Parallel byte-identity
# ----------------------------------------------------------------------
def _record_via_cells(directory, config, jobs):
    specs = _specs("UCB", "eGreedy")
    obs = Instrumentation()
    recorder = FlightRecorder(
        directory, run=make_run_header(config, HORIZON, RUN_SEED, specs)
    )
    obs.flight_recorder = recorder
    cells = [
        PolicyRunCell(
            config=config,
            policy_name=spec["name"],
            horizon=HORIZON,
            run_seed=RUN_SEED,
            policy_seed=POLICY_SEED,
        )
        for spec in specs
    ]
    try:
        with use(obs):
            run_work_units(run_policy_run_cell, cells, jobs=jobs)
    finally:
        recorder.close()


def test_parallel_log_is_byte_identical_to_serial(tmp_path, small_config):
    _record_via_cells(tmp_path / "serial", small_config, jobs=1)
    _record_via_cells(tmp_path / "pool", small_config, jobs=2)
    serial = (tmp_path / "serial" / DECISIONS_FILENAME).read_bytes()
    pooled = (tmp_path / "pool" / DECISIONS_FILENAME).read_bytes()
    assert serial == pooled


# ----------------------------------------------------------------------
# Crash safety
# ----------------------------------------------------------------------
def test_sigkill_leaves_longest_valid_prefix(tmp_path):
    """A real SIGKILL mid-record: strict load refuses, recovery parses."""
    script = """
import os, signal, sys
from repro.obs.flight import FlightRecorder, cell_record

recorder = FlightRecorder(sys.argv[1])
for seed in range(9):
    recorder.record(cell_record(seed))
# Leave a half-written line in flight, then die without cleanup.
recorder._handle.write('{"kind": "decision", "t": 10, "chosen": [1')
recorder._handle.flush()
os.kill(os.getpid(), signal.SIGKILL)
"""
    run_dir = tmp_path / "victim"
    result = subprocess.run(
        [sys.executable, "-c", script, str(run_dir)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert result.returncode == -signal.SIGKILL
    with pytest.raises(ConfigurationError):
        load_flight(run_dir)  # strict readers refuse the torn tail
    recovered = load_flight(run_dir, strict=False)
    assert [r["seed"] for r in recovered.records] == list(range(9))


# ----------------------------------------------------------------------
# Log model: header validation, grouping
# ----------------------------------------------------------------------
def test_header_schema_version_mismatch_raises(tmp_path, small_config):
    _record_log(tmp_path, small_config, _specs("UCB"), horizon=2)
    log = load_flight(tmp_path)
    log.records[0]["schema_version"] = FLIGHT_SCHEMA_VERSION + 1
    with pytest.raises(SchemaError, match="schema version"):
        log.header
    headless = tmp_path / "headless.jsonl"
    write_trace_jsonl([cell_record(0)], headless)
    with pytest.raises(SchemaError, match="no header"):
        load_flight(headless).header


def test_cells_group_by_marker_and_reject_orphans():
    buffer = FlightBuffer()
    buffer.record(cell_record(0))
    buffer.record({"kind": "decision", "t": 1, "policy": "UCB"})
    buffer.record(cell_record(1))
    buffer.record({"kind": "decision", "t": 1, "policy": "UCB"})
    from repro.obs.flight import FlightLog

    log = FlightLog(path=None, records=buffer.records)
    assert [seed for seed, _ in log.cells()] == [0, 1]
    assert all(len(group) == 1 for _, group in log.cells())
    orphan = FlightLog(
        path=None, records=[{"kind": "decision", "t": 1, "policy": "UCB"}]
    )
    with pytest.raises(SchemaError, match="before first cell"):
        orphan.cells()


def test_digest_is_order_and_content_sensitive():
    a = {"kind": "decision", "t": 1, "policy": "UCB", "chosen": [1]}
    b = {"kind": "decision", "t": 2, "policy": "UCB", "chosen": [2]}
    assert flight_digest([a, b]) != flight_digest([b, a])
    assert policy_digests([a, b])["UCB"][0] == 2


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def test_replay_reproduces_rewards_bit_for_bit(tmp_path, small_config):
    _record_log(tmp_path, small_config, _specs("UCB", "TS", "eGreedy"))
    report = replay_flight(load_flight(tmp_path))
    assert report.ok
    assert {g.label for g in report.groups} == {"UCB", "TS", "eGreedy"}
    assert all(g.logged_reward == g.replayed_reward for g in report.groups)
    assert "replay OK" in render_replay_report(report)[-1]


def test_replay_until_truncates_both_sides(tmp_path, small_config):
    _record_log(tmp_path, small_config, _specs("eGreedy"))
    report = replay_flight(load_flight(tmp_path), until=10)
    assert report.ok and report.groups[0].rounds == 10
    with pytest.raises(ConfigurationError, match="--until"):
        replay_flight(load_flight(tmp_path), until=0)


def test_replay_pinpoints_a_tampered_round(tmp_path, small_config):
    _record_log(tmp_path, small_config, _specs("UCB"))
    path = tmp_path / DECISIONS_FILENAME
    lines = path.read_text().splitlines()
    tampered = json.loads(lines[20])
    assert tampered["t"] == 20
    tampered["chosen"] = list(reversed(tampered["chosen"])) or [0]
    tampered["reward"] += 1.0
    lines[20] = record_line(tampered)
    path.write_text("\n".join(lines) + "\n")
    report = replay_flight(load_flight(tmp_path))
    assert not report.ok
    assert report.groups[0].first_divergence == 20
    rendered = render_replay_report(report, diff=True)
    assert any("DIVERGED" in line for line in rendered)
    assert any(line.startswith("  *") for line in rendered)  # field diff


def test_replay_detects_truncated_logs(tmp_path, small_config):
    _record_log(tmp_path, small_config, _specs("UCB"))
    path = tmp_path / DECISIONS_FILENAME
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-5]) + "\n")
    report = replay_flight(load_flight(tmp_path))
    assert not report.ok
    assert report.groups[0].first_divergence == HORIZON - 4


def test_replay_rejects_unknown_modes():
    from repro.obs.flight import FlightLog, header_record

    log = FlightLog(path=None, records=[header_record({"mode": "mystery"})])
    with pytest.raises(SchemaError, match="mode"):
        replay_flight(log)


# ----------------------------------------------------------------------
# CLI: replay exit codes, summary section, diff drift detection
# ----------------------------------------------------------------------
def test_cli_replay_exit_codes(tmp_path, small_config, capsys):
    _record_log(tmp_path, small_config, _specs("UCB"))
    assert cli_main(["obs", "replay", str(tmp_path)]) == 0
    assert "replay OK" in capsys.readouterr().out
    path = tmp_path / DECISIONS_FILENAME
    lines = path.read_text().splitlines()
    record = json.loads(lines[5])
    record["reward"] += 1.0
    lines[5] = record_line(record)
    path.write_text("\n".join(lines) + "\n")
    assert cli_main(["obs", "replay", str(tmp_path), "--diff"]) == 1
    assert "first divergence" in capsys.readouterr().out


def test_cli_summary_renders_flight_section(tmp_path, small_config, capsys):
    from repro.io.runstore import persist_run_telemetry

    _record_log(tmp_path, small_config, _specs("UCB", "eGreedy"))
    persist_run_telemetry(tmp_path, Instrumentation())
    assert cli_main(["obs", "summary", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "decision flight log" in out
    assert "eGreedy" in out and "propensity" in out


def test_cli_diff_flags_choice_drift(tmp_path, small_config, capsys):
    from repro.io.runstore import persist_run_telemetry

    base, cand = tmp_path / "base", tmp_path / "cand"
    _record_log(base, small_config, _specs("UCB"))
    _record_log(cand, small_config, _specs("UCB"))
    for directory in (base, cand):
        persist_run_telemetry(directory, Instrumentation())
    assert cli_main(["obs", "diff", str(base), str(cand)]) == 0
    capsys.readouterr()
    # Flip one choice in the candidate: same metrics, drifted decisions.
    path = cand / DECISIONS_FILENAME
    lines = path.read_text().splitlines()
    record = json.loads(lines[3])
    record["chosen"] = list(reversed(record["chosen"])) or [0]
    lines[3] = record_line(record)
    path.write_text("\n".join(lines) + "\n")
    assert cli_main(["obs", "diff", str(base), str(cand)]) == 1
    assert "choices drifted" in capsys.readouterr().out


def test_cli_diff_flags_one_sided_logs(tmp_path, small_config, capsys):
    from repro.io.runstore import persist_run_telemetry

    base, cand = tmp_path / "base", tmp_path / "cand"
    _record_log(base, small_config, _specs("UCB"), horizon=3)
    for directory in (base, cand):
        directory.mkdir(exist_ok=True)
        persist_run_telemetry(directory, Instrumentation())
    assert cli_main(["obs", "diff", str(base), str(cand)]) == 1
    assert "only in baseline" in capsys.readouterr().out
