"""Result rendering and persistence."""

import csv

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.reporting import (
    ExperimentResult,
    TableBlock,
    format_table,
    render_result,
    save_result,
)


def make_result():
    return ExperimentResult(
        experiment_id="demo",
        title="Demo experiment",
        params={"seed": 0},
        checkpoints=[10, 20, 30],
        curves={"accept_ratio": {"UCB": [0.1, 0.2, 0.3], "TS": [0.05, 0.1, 0.1]}},
        tables=[TableBlock("scalars", ["name", "value"], [["x", 1.5]])],
        notes="hello",
    )


def test_table_block_validates_row_widths():
    with pytest.raises(ConfigurationError):
        TableBlock("bad", ["a", "b"], [[1]])


def test_format_table_aligns_columns():
    text = format_table(["name", "v"], [["UCB", 1.0], ["TS", 22.5]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 4  # header, rule, two rows
    assert "22.5" in lines[3]


def test_format_table_handles_none_and_extreme_floats():
    text = format_table(["v"], [[None], [1e-9], [123456.0], [0.0]])
    assert "-" in text
    assert "1e-09" in text
    assert "0" in text


def test_render_result_includes_all_sections():
    text = render_result(make_result())
    assert "demo" in text
    assert "accept_ratio" in text
    assert "UCB" in text
    assert "scalars" in text
    assert "hello" in text


def test_render_subsamples_long_curves():
    result = make_result()
    result.checkpoints = list(range(1, 101))
    result.curves = {"m": {"a": [float(i) for i in range(100)]}}
    text = render_result(result, max_curve_rows=5)
    # header + rule + at most ~6 rows in the metric section
    metric_section = text.split("-- m --")[1]
    data_lines = [l for l in metric_section.splitlines() if l and l[0].isdigit()]
    assert len(data_lines) <= 6
    assert any(l.startswith("100") for l in data_lines)  # last point kept


def test_render_requires_checkpoints_for_curves():
    result = make_result()
    result.checkpoints = None
    with pytest.raises(ConfigurationError):
        render_result(result)


def test_save_result_writes_all_artifacts(tmp_path):
    directory = save_result(make_result(), tmp_path)
    assert (directory / "report.txt").exists()
    assert (directory / "params.json").exists()
    curve_file = directory / "curve_accept_ratio.csv"
    assert curve_file.exists()
    with curve_file.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["t", "UCB", "TS"]
    assert rows[1][0] == "10"
    table_file = directory / "table_scalars.csv"
    assert table_file.exists()
