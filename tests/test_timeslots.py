"""Time slots and overlap-derived conflicts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebsn.timeslots import TimeSlot, conflicts_from_slots
from repro.exceptions import ConfigurationError


def test_slot_validation():
    with pytest.raises(ConfigurationError):
        TimeSlot(day_index=-1, start_hour=10.0)
    with pytest.raises(ConfigurationError):
        TimeSlot(day_index=0, start_hour=24.0)
    with pytest.raises(ConfigurationError):
        TimeSlot(day_index=0, start_hour=10.0, duration_hours=0.0)


def test_weekday_names():
    assert TimeSlot(0, 10.0).weekday == "Mon"
    assert TimeSlot(6, 10.0).weekday == "Sun"
    assert TimeSlot(9, 10.0).weekday == "Wed"  # wraps into week two


def test_papers_example_overlap():
    """A 7:30pm concert conflicts with a 7:00pm one on the same day."""
    first = TimeSlot(day_index=3, start_hour=19.5)
    second = TimeSlot(day_index=3, start_hour=19.0)
    assert first.overlaps(second)
    assert second.overlaps(first)


def test_different_days_never_overlap():
    assert not TimeSlot(0, 19.0).overlaps(TimeSlot(1, 19.0))


def test_back_to_back_slots_do_not_overlap():
    first = TimeSlot(0, 10.0, duration_hours=2.0)
    second = TimeSlot(0, 12.0, duration_hours=2.0)
    assert not first.overlaps(second)


def test_containment_overlaps():
    long_slot = TimeSlot(0, 10.0, duration_hours=8.0)
    short_slot = TimeSlot(0, 12.0, duration_hours=1.0)
    assert long_slot.overlaps(short_slot)
    assert short_slot.overlaps(long_slot)


def test_conflicts_from_slots_matches_pairwise_check():
    slots = [
        TimeSlot(0, 19.0),
        TimeSlot(0, 19.5),
        TimeSlot(0, 10.0, duration_hours=1.0),
        TimeSlot(1, 19.0),
    ]
    assert conflicts_from_slots(slots) == [(0, 1)]


def test_conflicts_from_slots_empty_input():
    assert conflicts_from_slots([]) == []


@settings(max_examples=40, deadline=None)
@given(
    days=st.lists(st.integers(0, 2), min_size=2, max_size=8),
    seed=st.integers(0, 1000),
)
def test_conflicts_match_naive_quadratic(days, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    slots = [
        TimeSlot(day, float(rng.uniform(0, 20)), float(rng.uniform(0.5, 4)))
        for day in days
    ]
    fast = set(conflicts_from_slots(slots))
    naive = {
        (i, j)
        for i in range(len(slots))
        for j in range(i + 1, len(slots))
        if slots[i].overlaps(slots[j])
    }
    assert fast == naive


def test_damai_events_expose_slots(damai):
    for event in damai.events[:5]:
        slot = event.slot
        assert slot.day_index == event.day_index
        assert slot.start_hour == event.start_hour
