"""Kendall-tau: closed-form cases, scipy cross-check, properties."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.metrics.kendall import _count_inversions, kendall_tau


def test_identical_rankings_give_plus_one():
    assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)


def test_reversed_rankings_give_minus_one():
    assert kendall_tau([4, 3, 2, 1], [1, 2, 3, 4]) == pytest.approx(-1.0)


def test_classic_textbook_example():
    # One discordant pair among three items: (3*2/2 - 2*1) wait —
    # est [1,3,2] vs truth [1,2,3]: pairs (1,3),(1,2) concordant,
    # (3,2) discordant -> tau = (2 - 1) / 3.
    assert kendall_tau([1, 3, 2], [1, 2, 3]) == pytest.approx(1 / 3)


def test_ties_count_as_neither():
    # est ties the pair that truth orders: C=2 D=0 T=1 over 3 pairs.
    assert kendall_tau([1, 1, 2], [1, 2, 3]) == pytest.approx(2 / 3)


def test_all_tied_estimates_give_zero():
    assert kendall_tau([5, 5, 5, 5], [1, 2, 3, 4]) == 0.0


def test_validation():
    with pytest.raises(ConfigurationError):
        kendall_tau([1, 2], [1, 2, 3])
    with pytest.raises(ConfigurationError):
        kendall_tau([1], [1])


def test_count_inversions_matches_bruteforce():
    rng = np.random.default_rng(0)
    for _ in range(20):
        values = rng.integers(0, 10, size=12).tolist()
        brute = sum(
            1
            for i in range(len(values))
            for j in range(i + 1, len(values))
            if values[i] > values[j]
        )
        assert _count_inversions(values) == brute


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 30),
    seed=st.integers(0, 10_000),
)
def test_matches_scipy_on_tie_free_data(n, seed):
    rng = np.random.default_rng(seed)
    estimated = rng.permutation(n).astype(float)
    truth = rng.permutation(n).astype(float)
    ours = kendall_tau(estimated, truth)
    scipy_tau = scipy.stats.kendalltau(estimated, truth).statistic
    assert ours == pytest.approx(scipy_tau, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 20), seed=st.integers(0, 10_000))
def test_symmetry_and_bounds(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 5, size=n).astype(float)  # with ties
    b = rng.integers(0, 5, size=n).astype(float)
    tau = kendall_tau(a, b)
    assert -1.0 <= tau <= 1.0
    assert tau == pytest.approx(kendall_tau(b, a))


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 20), seed=st.integers(0, 10_000))
def test_monotone_transform_invariance(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=n)
    b = rng.normal(size=n)
    assert kendall_tau(a, b) == pytest.approx(kendall_tau(np.exp(a), b * 3 + 1))
