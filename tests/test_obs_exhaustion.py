"""Golden test for the capacity-exhaustion detector (DESIGN.md §5.8).

OPT on the tiny 6-event world drains every event at a *known* round —
the world and run streams are seeded, so the drop points are exact
constants.  The telemetry pipeline must carry them unchanged from the
runner, through ``metrics.json``, into ``fasea obs summary``.
"""

import json

import pytest

from repro.bandits import OptPolicy
from repro.cli import main as cli_main
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.io.runstore import load_run_metrics, persist_run_telemetry
from repro.obs.cli import exhaustion_rows
from repro.obs.core import Instrumentation
from repro.simulation.runner import run_policy

#: (round, event_id) at which OPT drains each event's last seat on the
#: seeded tiny world below — golden constants, pinned.
GOLDEN_DROP_POINTS = [[2, 5.0], [4, 3.0], [5, 2.0], [8, 4.0], [10, 1.0], [12, 0.0]]


@pytest.fixture(scope="module")
def tiny_world():
    return build_world(
        SyntheticConfig(
            num_events=6,
            horizon=300,
            dim=3,
            capacity_mean=2.0,
            capacity_std=1.0,
            conflict_ratio=0.0,
            seed=1,
        )
    )


@pytest.fixture(scope="module")
def opt_obs(tiny_world):
    obs = Instrumentation()
    run_policy(OptPolicy(tiny_world.theta), tiny_world, run_seed=0, obs=obs)
    return obs


def test_opt_drains_known_events_at_known_rounds(opt_obs):
    snapshot = opt_obs.snapshot()
    assert snapshot.series["policy.OPT.capacity_exhausted"] == GOLDEN_DROP_POINTS


def test_every_event_is_reported_exactly_once(opt_obs, tiny_world):
    points = opt_obs.snapshot().series["policy.OPT.capacity_exhausted"]
    event_ids = sorted(int(value) for _, value in points)
    assert event_ids == list(range(len(tiny_world.capacities)))


def test_trace_carries_matching_exhaustion_events(opt_obs):
    events = [
        record
        for record in opt_obs.trace_records()
        if record.get("kind") == "event" and record["name"] == "capacity_exhausted"
    ]
    observed = [[e["fields"]["time_step"], float(e["fields"]["event_id"])] for e in events]
    assert observed == GOLDEN_DROP_POINTS
    assert all(event["fields"]["policy"] == "OPT" for event in events)


def test_drop_points_survive_metrics_json(opt_obs, tmp_path):
    paths = persist_run_telemetry(tmp_path, opt_obs)
    payload = json.loads(paths["metrics"].read_text())
    assert payload["series"]["policy.OPT.capacity_exhausted"] == GOLDEN_DROP_POINTS
    reloaded = load_run_metrics(tmp_path)
    assert reloaded.series["policy.OPT.capacity_exhausted"] == GOLDEN_DROP_POINTS


def test_exhaustion_rows_take_first_drain_per_event(opt_obs):
    rows = exhaustion_rows(opt_obs.snapshot())
    assert rows == [
        ("OPT", 0, 12),
        ("OPT", 1, 10),
        ("OPT", 2, 5),
        ("OPT", 3, 4),
        ("OPT", 4, 8),
        ("OPT", 5, 2),
    ]


def test_obs_summary_prints_the_drop_point_table(opt_obs, tmp_path, capsys):
    persist_run_telemetry(tmp_path, opt_obs)
    assert cli_main(["obs", "summary", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "capacity exhaustion" in out
    # The earliest drained event: event 5 at round 2.
    lines = [line.split() for line in out.splitlines() if line.startswith("OPT")]
    assert ["OPT", "5", "2"] in lines
    assert ["OPT", "0", "12"] in lines


def test_detector_is_silent_without_instrumentation(tiny_world):
    # NULL obs: identical run, nothing recorded anywhere.
    history = run_policy(OptPolicy(tiny_world.theta), tiny_world, run_seed=0)
    assert history.horizon == 300
