"""Property-based tests of the SQLite run store."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.runstore import RunStore
from repro.simulation.history import History

rewards_strategy = st.lists(
    st.integers(0, 5), min_size=1, max_size=30
).map(lambda xs: np.asarray(xs, dtype=float))


def make_history(rewards, name="UCB"):
    return History(
        policy_name=name,
        rewards=rewards,
        arranged=np.maximum(rewards, 1.0),
        avg_round_time=0.001,
    )


@settings(max_examples=30, deadline=None)
@given(rewards=rewards_strategy, seed=st.integers(0, 100))
def test_scalar_round_trip(rewards, seed):
    history = make_history(rewards)
    with RunStore() as store:
        run_id = store.record_history("exp", history, seed=seed)
        record = store.get_run(run_id)
        assert record.total_reward == history.total_reward
        assert record.horizon == history.horizon
        assert record.accept_ratio == history.overall_accept_ratio
        assert record.seed == seed


@settings(max_examples=20, deadline=None)
@given(
    batches=st.lists(
        st.tuples(st.sampled_from(["fig1", "fig2"]), rewards_strategy),
        min_size=1,
        max_size=8,
    )
)
def test_counts_and_filters_consistent(batches):
    with RunStore() as store:
        per_experiment = {"fig1": 0, "fig2": 0}
        for experiment, rewards in batches:
            store.record_history(experiment, make_history(rewards))
            per_experiment[experiment] += 1
        assert store.count_runs() == len(batches)
        for experiment, expected in per_experiment.items():
            assert len(store.list_runs(experiment=experiment)) == expected


@settings(max_examples=20, deadline=None)
@given(rewards=rewards_strategy)
def test_curves_preserve_checkpoint_values(rewards):
    history = make_history(rewards)
    checkpoints = [1, history.horizon]
    with RunStore() as store:
        run_id = store.record_history(
            "exp", history, curve_checkpoints=checkpoints
        )
        stored = dict(store.curve(run_id, "total_rewards"))
        expected = history.rewards_at(checkpoints)
        assert stored[1] == expected[0]
        assert stored[history.horizon] == expected[1]


@settings(max_examples=15, deadline=None)
@given(
    names=st.lists(
        st.sampled_from(["UCB", "TS", "Random"]), min_size=1, max_size=6
    ),
    rewards=rewards_strategy,
)
def test_statistics_match_manual_aggregation(names, rewards):
    with RunStore() as store:
        ratios = {}
        for index, name in enumerate(names):
            history = make_history(rewards, name=name)
            store.record_history("exp", history, seed=index)
            ratios.setdefault(name, []).append(history.overall_accept_ratio)
        stats = store.policy_statistics("exp")
        for name, values in ratios.items():
            assert stats[name]["count"] == len(values)
            assert stats[name]["mean_accept_ratio"] == (
                sum(values) / len(values)
            )
