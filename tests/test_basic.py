"""The basic contextual bandit mode (Figures 11-13)."""

import math

import numpy as np

from repro.bandits import OptPolicy, UcbPolicy
from repro.datasets.synthetic import SyntheticConfig
from repro.simulation.basic import build_basic_world
from repro.simulation.runner import run_policy


def make_basic():
    return build_basic_world(
        SyntheticConfig(num_events=10, horizon=300, dim=3, seed=1)
    )


def test_basic_world_has_no_conflicts_and_infinite_capacity():
    world = make_basic()
    assert world.conflicts.num_pairs() == 0
    assert all(math.isinf(c) for c in world.capacities)
    assert world.config.user_capacity_min == 1
    assert world.config.user_capacity_max == 1


def test_basic_rounds_arrange_exactly_one_event():
    world = make_basic()
    history = run_policy(OptPolicy(world.theta), world, horizon=100)
    assert np.all(history.arranged == 1)


def test_basic_capacities_never_exhaust():
    world = make_basic()
    history = run_policy(OptPolicy(world.theta), world, horizon=300)
    # OPT's cumulative rewards keep growing to the end (no sudden plateau).
    cumulative = history.cumulative_rewards()
    assert cumulative[-1] > cumulative[len(cumulative) // 2]


def test_basic_preserves_theta_of_the_underlying_world():
    from repro.datasets.synthetic import build_world

    config = SyntheticConfig(num_events=10, horizon=100, dim=3, seed=1)
    assert np.allclose(
        build_basic_world(config).theta, build_world(
            config.with_overrides(
                conflict_ratio=0.0, user_capacity_min=1, user_capacity_max=1
            )
        ).theta
    )


def test_ucb_learns_in_basic_mode():
    world = make_basic()
    opt = run_policy(OptPolicy(world.theta), world, horizon=300, run_seed=0)
    ucb = run_policy(UcbPolicy(dim=3), world, horizon=300, run_seed=0)
    # Late-stage accept ratio approaches OPT's.
    late_opt = opt.rewards[200:].mean()
    late_ucb = ucb.rewards[200:].mean()
    assert late_ucb > 0.7 * late_opt
