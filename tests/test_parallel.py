"""repro.parallel: deterministic fan-out, bit-for-bit merge guarantees.

The fast tests here exercise the executor inline (``jobs=1``) and the
cell runners against the serial reference; the actual
process-pool duels carry the ``slow`` marker and run via
``pytest -m slow`` (they spawn workers, which the default tier-1 run
should not pay for).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis.replication import replicate_policies
from repro.bandits import OptPolicy, make_policy
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.exceptions import ConfigurationError
from repro.experiments.grid import sweep
from repro.parallel import (
    GridCell,
    ReplicationCell,
    resolve_jobs,
    run_grid_cell,
    run_replication_cell,
    run_work_units,
)
from repro.simulation.runner import run_policy

POLICIES = ("UCB", "TS", "Random")


def tiny_config(**overrides) -> SyntheticConfig:
    base = dict(
        num_events=15,
        horizon=120,
        dim=4,
        capacity_mean=8.0,
        capacity_std=3.0,
        conflict_ratio=0.25,
        seed=0,
    )
    base.update(overrides)
    return SyntheticConfig(**base)


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
def _square(value: int) -> int:
    return value * value


def _fail_on_three(value: int) -> int:
    if value == 3:
        raise ConfigurationError("boom")
    return value


def test_run_work_units_preserves_order_inline():
    assert run_work_units(_square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_run_work_units_empty_is_empty():
    assert run_work_units(_square, [], jobs=4) == []


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(0) >= 1
    with pytest.raises(ConfigurationError):
        resolve_jobs(-2)


def test_run_work_units_propagates_worker_errors_inline():
    with pytest.raises(ConfigurationError, match="boom"):
        run_work_units(_fail_on_three, [1, 2, 3], jobs=1)


@pytest.mark.slow
def test_run_work_units_preserves_order_across_processes():
    values = list(range(17))
    assert run_work_units(_square, values, jobs=4) == [v * v for v in values]


@pytest.mark.slow
def test_run_work_units_propagates_worker_errors_across_processes():
    with pytest.raises(ConfigurationError, match="boom"):
        run_work_units(_fail_on_three, [1, 2, 3, 4], jobs=2)


# ----------------------------------------------------------------------
# Replication cell ≡ serial per-policy runs (bit-for-bit)
# ----------------------------------------------------------------------
def test_replication_cell_rewards_are_bit_for_bit_serial():
    """The fleet-based cell reproduces run_policy's History.rewards
    exactly — the invariant that makes parallel merging trivial."""
    config = tiny_config()
    seed = 3
    cell = ReplicationCell(
        config=config,
        seed=seed,
        horizon=config.horizon,
        policy_names=POLICIES,
        policy_seed=1,
    )
    histories = run_replication_cell(cell)
    world = build_world(config.with_overrides(seed=seed))
    reference = {
        "OPT": run_policy(
            OptPolicy(world.theta), world, horizon=config.horizon, run_seed=seed
        )
    }
    for name in POLICIES:
        reference[name] = run_policy(
            make_policy(name, dim=config.dim, seed=1),
            world,
            horizon=config.horizon,
            run_seed=seed,
        )
    assert set(histories) == {"OPT", *POLICIES}
    for name, expected in reference.items():
        np.testing.assert_array_equal(histories[name].rewards, expected.rewards)
        np.testing.assert_array_equal(histories[name].arranged, expected.arranged)


# ----------------------------------------------------------------------
# replicate_policies / sweep: jobs=1 vs jobs=N
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_replicate_policies_jobs4_identical_to_serial():
    """Per-seed accept ratios and regrets match exactly (==, not approx)."""
    config = tiny_config()
    serial = replicate_policies(
        config, seeds=range(4), horizon=100, policy_names=POLICIES
    )
    parallel = replicate_policies(
        config, seeds=range(4), horizon=100, policy_names=POLICIES, jobs=4
    )
    assert serial.accept_ratios == parallel.accept_ratios
    assert serial.total_regrets == parallel.total_regrets


@pytest.mark.slow
def test_sweep_jobs_identical_to_serial():
    config = tiny_config()
    axes = {"dim": [3, 5], "conflict_ratio": [0.0, 0.5]}
    assert sweep(config, axes, horizon=80, policy_names=POLICIES) == sweep(
        config, axes, horizon=80, policy_names=POLICIES, jobs=3
    )


def test_replicate_policies_rejects_negative_jobs():
    with pytest.raises(ConfigurationError):
        replicate_policies(tiny_config(), seeds=[0], horizon=10, jobs=-1)


# ----------------------------------------------------------------------
# Picklability: everything crossing the process boundary must
# round-trip through pickle (the contract FAS006 enforces statically)
# ----------------------------------------------------------------------
def test_work_unit_callables_pickle_by_reference():
    """The runner functions the executors ship to workers must pickle
    by reference, or spawn-based platforms fail at submit time."""
    for fn in (run_replication_cell, run_grid_cell, _square, _fail_on_three):
        assert pickle.loads(pickle.dumps(fn)) is fn


def test_replication_cell_pickle_round_trip():
    cell = ReplicationCell(
        config=tiny_config(),
        seed=5,
        horizon=60,
        policy_names=POLICIES,
        policy_seed=1,
    )
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell
    # The clone must drive the exact same replication as the original.
    histories = run_replication_cell(cell)
    cloned = run_replication_cell(clone)
    assert set(histories) == set(cloned)
    for name in histories:
        np.testing.assert_array_equal(histories[name].rewards, cloned[name].rewards)


def test_grid_cell_pickle_round_trip():
    config = tiny_config()
    cell = GridCell(
        config=config.with_overrides(dim=3),
        overrides=(("dim", 3),),
        horizon=40,
        policy_names=POLICIES,
        run_seed=0,
        policy_seed=1,
    )
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell
    assert run_grid_cell(clone) == run_grid_cell(cell)
