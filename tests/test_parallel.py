"""repro.parallel: deterministic fan-out, bit-for-bit merge guarantees.

The fast tests here exercise the executor inline (``jobs=1``) and the
cell runners against the serial reference; the actual
process-pool duels carry the ``slow`` marker and run via
``pytest -m slow`` (they spawn workers, which the default tier-1 run
should not pay for).
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.replication import replicate_policies
from repro.bandits import OptPolicy, make_policy
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.exceptions import ConfigurationError, WorkUnitTimeoutError
from repro.experiments.grid import sweep
from repro.io.checkpoint import ExecutorCheckpoint
from repro.parallel import (
    GridCell,
    ReplicationCell,
    UnitFailure,
    resolve_jobs,
    run_grid_cell,
    run_replication_cell,
    run_work_units,
)
from repro.simulation.runner import run_policy

POLICIES = ("UCB", "TS", "Random")


def tiny_config(**overrides) -> SyntheticConfig:
    base = dict(
        num_events=15,
        horizon=120,
        dim=4,
        capacity_mean=8.0,
        capacity_std=3.0,
        conflict_ratio=0.25,
        seed=0,
    )
    base.update(overrides)
    return SyntheticConfig(**base)


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
def _square(value: int) -> int:
    return value * value


def _fail_on_three(value: int) -> int:
    if value == 3:
        raise ConfigurationError("boom")
    return value


def test_run_work_units_preserves_order_inline():
    assert run_work_units(_square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_run_work_units_empty_is_empty():
    assert run_work_units(_square, [], jobs=4) == []


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(0) >= 1
    with pytest.raises(ConfigurationError):
        resolve_jobs(-2)


def test_run_work_units_propagates_worker_errors_inline():
    with pytest.raises(ConfigurationError, match="boom"):
        run_work_units(_fail_on_three, [1, 2, 3], jobs=1)


@pytest.mark.slow
def test_run_work_units_preserves_order_across_processes():
    values = list(range(17))
    assert run_work_units(_square, values, jobs=4) == [v * v for v in values]


@pytest.mark.slow
def test_run_work_units_propagates_worker_errors_across_processes():
    with pytest.raises(ConfigurationError, match="boom"):
        run_work_units(_fail_on_three, [1, 2, 3, 4], jobs=2)


# ----------------------------------------------------------------------
# Fault tolerance
# ----------------------------------------------------------------------
def _touch_and_square(args) -> int:
    """Record that this unit actually executed, then square it."""
    directory, value = args
    (Path(directory) / f"ran-{value}").touch()
    return value * value


def _sleep_seconds(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _kill_once_then_square(args) -> int:
    """SIGKILL the first worker process to claim the marker file."""
    marker, value = args
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return value * value
    os.kill(os.getpid(), signal.SIGKILL)
    raise AssertionError("unreachable")  # pragma: no cover


def _kill_on_seven(value: int) -> int:
    if value == 7:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def _replication_cell_killed_once(args):
    """Replication cell behind a kill-once trap (retry equivalence)."""
    marker, cell = args
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return run_replication_cell(cell)
    os.kill(os.getpid(), signal.SIGKILL)
    raise AssertionError("unreachable")  # pragma: no cover


def test_run_work_units_validates_fault_tolerance_arguments():
    with pytest.raises(ConfigurationError, match="timeout"):
        run_work_units(_square, [1], timeout=0)
    with pytest.raises(ConfigurationError, match="timeout"):
        run_work_units(_square, [1], timeout=-2.5)
    with pytest.raises(ConfigurationError, match="retries"):
        run_work_units(_square, [1], retries=-1)


def test_keep_going_records_failures_in_unit_order():
    results = run_work_units(_fail_on_three, [1, 2, 3, 4], jobs=1, keep_going=True)
    assert results[:2] == [1, 2] and results[3] == 4
    failure = results[2]
    assert isinstance(failure, UnitFailure)
    assert failure.index == 2
    assert failure.error_type == "ConfigurationError"
    assert "boom" in failure.message


def test_serial_error_is_annotated_with_unit_index():
    with pytest.raises(ConfigurationError, match="boom") as excinfo:
        run_work_units(_fail_on_three, [1, 3], jobs=1)
    assert "raised by work unit 1" in getattr(excinfo.value, "__notes__", [])


def test_serial_resume_replays_cached_units(tmp_path):
    units = [(str(tmp_path / "ran"), value) for value in (2, 5)]
    (tmp_path / "ran").mkdir()
    checkpoint_dir = tmp_path / "ckpt"
    first = run_work_units(
        _touch_and_square, units, jobs=1, checkpoint=ExecutorCheckpoint(checkpoint_dir)
    )
    assert first == [4, 25]
    for path in (tmp_path / "ran").iterdir():
        path.unlink()
    resumed = run_work_units(
        _touch_and_square,
        units,
        jobs=1,
        checkpoint=ExecutorCheckpoint(checkpoint_dir, resume=True),
    )
    assert resumed == first
    assert list((tmp_path / "ran").iterdir()) == []  # nothing re-ran


def test_resume_rejects_changed_work(tmp_path):
    (tmp_path / "ran").mkdir()
    checkpoint_dir = tmp_path / "ckpt"
    run_work_units(
        _touch_and_square,
        [(str(tmp_path / "ran"), 2)],
        checkpoint=ExecutorCheckpoint(checkpoint_dir),
    )
    with pytest.raises(ConfigurationError, match="digest mismatch"):
        run_work_units(
            _touch_and_square,
            [(str(tmp_path / "ran"), 9)],  # different unit, same slot
            checkpoint=ExecutorCheckpoint(checkpoint_dir, resume=True),
        )


@pytest.mark.slow
def test_failing_unit_cancels_queued_units_promptly():
    """One bad unit must not wait out the whole queue: cancel_futures
    keeps the exit prompt and the note names the offender."""
    units: list = [3] + [1, 2, 4, 5, 6, 7, 8]  # _fail_on_three fails on 3
    start = time.perf_counter()
    with pytest.raises(ConfigurationError, match="boom") as excinfo:
        run_work_units(_fail_on_three, units, jobs=2)
    assert "raised by work unit 0" in getattr(excinfo.value, "__notes__", [])
    assert time.perf_counter() - start < 30.0


@pytest.mark.slow
def test_sleeping_queue_exits_promptly_on_failure():
    units: list = [(None, "fail")] + [2.0] * 6

    start = time.perf_counter()
    with pytest.raises(TypeError) as excinfo:  # sleep((None, "fail")) raises
        run_work_units(_sleep_seconds, units, jobs=2)
    elapsed = time.perf_counter() - start
    assert "raised by work unit 0" in getattr(excinfo.value, "__notes__", [])
    # Serial drain of six 2-second sleepers would take >= 12s; the
    # cancelled queue exits after at most the in-flight sleeper.
    assert elapsed < 10.0


@pytest.mark.slow
def test_timeout_terminates_wedged_pool():
    start = time.perf_counter()
    with pytest.raises(WorkUnitTimeoutError, match="per-unit timeout"):
        run_work_units(_sleep_seconds, [600.0, 600.0], jobs=2, timeout=1.0)
    assert time.perf_counter() - start < 60.0


@pytest.mark.slow
def test_killed_worker_is_retried_to_identical_results(tmp_path):
    units = [(str(tmp_path / "killed"), value) for value in range(6)]
    results = run_work_units(_kill_once_then_square, units, jobs=2, retries=1)
    assert results == [value * value for value in range(6)]


@pytest.mark.slow
def test_killed_worker_without_retries_raises():
    with pytest.raises(Exception) as excinfo:
        run_work_units(_kill_on_seven, [7, 7, 7, 7], jobs=2, retries=0)
    notes = getattr(excinfo.value, "__notes__", [])
    assert any("worker pool crashed" in note for note in notes)


@pytest.mark.slow
def test_keep_going_isolates_poison_unit():
    results = run_work_units(
        _kill_on_seven, [2, 7, 3], jobs=2, keep_going=True, retries=0
    )
    assert results[0] == 4 and results[2] == 9
    failure = results[1]
    assert isinstance(failure, UnitFailure)
    assert failure.index == 1


@pytest.mark.slow
def test_replication_survives_one_worker_kill_bit_identically(tmp_path):
    """A killed-and-retried sweep merges the same histories the serial
    sweep produces — the acceptance bar for executor fault tolerance."""
    cells = [
        ReplicationCell(
            config=tiny_config(),
            seed=seed,
            horizon=60,
            policy_names=POLICIES,
            policy_seed=1,
        )
        for seed in range(3)
    ]
    reference = run_work_units(run_replication_cell, cells, jobs=1)
    marker = str(tmp_path / "killed")
    survived = run_work_units(
        _replication_cell_killed_once,
        [(marker, cell) for cell in cells],
        jobs=2,
        retries=2,
    )
    assert os.path.exists(marker)  # the kill actually happened
    for expected, actual in zip(reference, survived):
        assert set(expected) == set(actual)
        for name in expected:
            np.testing.assert_array_equal(actual[name].rewards, expected[name].rewards)


# ----------------------------------------------------------------------
# Replication cell ≡ serial per-policy runs (bit-for-bit)
# ----------------------------------------------------------------------
def test_replication_cell_rewards_are_bit_for_bit_serial():
    """The fleet-based cell reproduces run_policy's History.rewards
    exactly — the invariant that makes parallel merging trivial."""
    config = tiny_config()
    seed = 3
    cell = ReplicationCell(
        config=config,
        seed=seed,
        horizon=config.horizon,
        policy_names=POLICIES,
        policy_seed=1,
    )
    histories = run_replication_cell(cell)
    world = build_world(config.with_overrides(seed=seed))
    reference = {
        "OPT": run_policy(
            OptPolicy(world.theta), world, horizon=config.horizon, run_seed=seed
        )
    }
    for name in POLICIES:
        reference[name] = run_policy(
            make_policy(name, dim=config.dim, seed=1),
            world,
            horizon=config.horizon,
            run_seed=seed,
        )
    assert set(histories) == {"OPT", *POLICIES}
    for name, expected in reference.items():
        np.testing.assert_array_equal(histories[name].rewards, expected.rewards)
        np.testing.assert_array_equal(histories[name].arranged, expected.arranged)


# ----------------------------------------------------------------------
# replicate_policies / sweep: jobs=1 vs jobs=N
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_replicate_policies_jobs4_identical_to_serial():
    """Per-seed accept ratios and regrets match exactly (==, not approx)."""
    config = tiny_config()
    serial = replicate_policies(
        config, seeds=range(4), horizon=100, policy_names=POLICIES
    )
    parallel = replicate_policies(
        config, seeds=range(4), horizon=100, policy_names=POLICIES, jobs=4
    )
    assert serial.accept_ratios == parallel.accept_ratios
    assert serial.total_regrets == parallel.total_regrets


@pytest.mark.slow
def test_sweep_jobs_identical_to_serial():
    config = tiny_config()
    axes = {"dim": [3, 5], "conflict_ratio": [0.0, 0.5]}
    assert sweep(config, axes, horizon=80, policy_names=POLICIES) == sweep(
        config, axes, horizon=80, policy_names=POLICIES, jobs=3
    )


def test_replicate_policies_rejects_negative_jobs():
    with pytest.raises(ConfigurationError):
        replicate_policies(tiny_config(), seeds=[0], horizon=10, jobs=-1)


# ----------------------------------------------------------------------
# Picklability: everything crossing the process boundary must
# round-trip through pickle (the contract FAS006 enforces statically)
# ----------------------------------------------------------------------
def test_work_unit_callables_pickle_by_reference():
    """The runner functions the executors ship to workers must pickle
    by reference, or spawn-based platforms fail at submit time."""
    for fn in (run_replication_cell, run_grid_cell, _square, _fail_on_three):
        assert pickle.loads(pickle.dumps(fn)) is fn


def test_replication_cell_pickle_round_trip():
    cell = ReplicationCell(
        config=tiny_config(),
        seed=5,
        horizon=60,
        policy_names=POLICIES,
        policy_seed=1,
    )
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell
    # The clone must drive the exact same replication as the original.
    histories = run_replication_cell(cell)
    cloned = run_replication_cell(clone)
    assert set(histories) == set(cloned)
    for name in histories:
        np.testing.assert_array_equal(histories[name].rewards, cloned[name].rewards)


def test_grid_cell_pickle_round_trip():
    config = tiny_config()
    cell = GridCell(
        config=config.with_overrides(dim=3),
        overrides=(("dim", 3),),
        horizon=40,
        policy_names=POLICIES,
        run_seed=0,
        policy_seed=1,
    )
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell
    assert run_grid_cell(clone) == run_grid_cell(cell)
