"""Theoretical bounds: formulas, monotonicity, and envelope property."""

import math

import pytest

from repro.bandits import OptPolicy, UcbPolicy
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.exceptions import ConfigurationError
from repro.simulation.runner import run_policy
from repro.theory import confidence_radius, cucb_regret_bound, ts_sampling_width


def test_confidence_radius_closed_form():
    value = confidence_radius(
        num_observations=0, dim=4, lam=1.0, delta=0.1
    )
    assert value == pytest.approx(math.sqrt(4 * math.log(10)) + 1.0)


def test_confidence_radius_grows_with_n_and_d():
    base = confidence_radius(100, dim=5)
    assert confidence_radius(1000, dim=5) > base
    assert confidence_radius(100, dim=20) > base


def test_confidence_radius_shrinks_with_delta():
    assert confidence_radius(100, dim=5, delta=0.5) < confidence_radius(
        100, dim=5, delta=0.01
    )


def test_confidence_radius_validation():
    with pytest.raises(ConfigurationError):
        confidence_radius(-1, 5)
    with pytest.raises(ConfigurationError):
        confidence_radius(10, 0)
    with pytest.raises(ConfigurationError):
        confidence_radius(10, 5, lam=0)
    with pytest.raises(ConfigurationError):
        confidence_radius(10, 5, delta=1.0)


def test_ts_sampling_width_matches_the_policy():
    from repro.bandits import ThompsonSamplingPolicy

    policy = ThompsonSamplingPolicy(dim=7, delta=0.2, seed=0)
    assert ts_sampling_width(50, dim=7, delta=0.2) == pytest.approx(
        policy.sampling_width(50)
    )


def test_ts_sampling_width_validation():
    with pytest.raises(ConfigurationError):
        ts_sampling_width(0, 5)
    with pytest.raises(ConfigurationError):
        ts_sampling_width(10, 5, delta=2.0)


def test_regret_bound_grows_sublinearly_in_t():
    """The envelope is O(sqrt(T) log T): quadrupling T should far less
    than quadruple the bound."""
    small = cucb_regret_bound(horizon=1000, dim=10, max_arrangement_size=5)
    large = cucb_regret_bound(horizon=4000, dim=10, max_arrangement_size=5)
    assert large < 4 * small
    assert large > small


def test_regret_bound_validation():
    with pytest.raises(ConfigurationError):
        cucb_regret_bound(0, 10, 5)
    with pytest.raises(ConfigurationError):
        cucb_regret_bound(10, 10, 0)


def test_measured_ucb_regret_sits_below_the_envelope():
    """The whole point: the theory is an upper envelope for practice."""
    config = SyntheticConfig(
        num_events=20,
        horizon=1000,
        dim=4,
        capacity_mean=1000.0,
        capacity_std=1.0,
        seed=0,
    )
    world = build_world(config)
    opt = run_policy(OptPolicy(world.theta), world, run_seed=0)
    ucb = run_policy(UcbPolicy(dim=4, alpha=2.0), world, run_seed=0)
    measured = opt.total_reward - ucb.total_reward
    envelope = cucb_regret_bound(
        horizon=1000, dim=4, max_arrangement_size=config.user_capacity_max
    )
    assert measured < envelope
