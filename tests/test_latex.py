"""LaTeX rendering of tables and results."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.latex import escape_latex, latex_result, latex_table
from repro.experiments.reporting import ExperimentResult, TableBlock


def test_escape_latex_specials():
    assert escape_latex("50% & more_fun #1") == r"50\% \& more\_fun \#1"
    assert escape_latex("{x}$") == r"\{x\}\$"


def test_latex_table_structure():
    text = latex_table(["Algorithm", "value"], [["UCB", 1.5], ["TS", 0.001]])
    assert text.startswith(r"\begin{tabular}{lr}")
    assert r"\toprule" in text
    assert r"UCB & 1.5 \\" in text
    assert text.endswith(r"\end{tabular}")
    assert r"\begin{table}" not in text  # unwrapped without caption


def test_latex_table_wrapped_with_caption_and_label():
    text = latex_table(["a"], [[1]], caption="My table", label="tab:x")
    assert r"\begin{table}[t]" in text
    assert r"\caption{My table}" in text
    assert r"\label{tab:x}" in text
    assert text.endswith(r"\end{table}")


def test_latex_table_escapes_cells_and_headers():
    text = latex_table(["p_value"], [["<0.05 & small"]])
    assert r"p\_value" in text
    assert r"<0.05 \& small" in text


def test_latex_table_none_and_float_formatting():
    text = latex_table(["v"], [[None], [123456.0], [0.0]])
    assert "--" in text
    assert "1.23e+05" in text


def test_latex_table_validation():
    with pytest.raises(ConfigurationError):
        latex_table([], [])
    with pytest.raises(ConfigurationError):
        latex_table(["a", "b"], [[1]])


def test_latex_result_renders_curves_and_tables():
    result = ExperimentResult(
        experiment_id="demo",
        title="Demo",
        checkpoints=[10, 20],
        curves={"accept_ratio": {"UCB": [0.1, 0.2]}},
        tables=[TableBlock("scalars", ["name", "v"], [["x", 1.0]])],
    )
    text = latex_result(result)
    assert text.count(r"\begin{tabular}") == 2
    assert r"\label{tab:demo-scalars}" in text
    assert r"\label{tab:demo-accept-ratio}" in text


def test_latex_result_requires_checkpoints_for_curves():
    result = ExperimentResult(
        experiment_id="demo",
        title="Demo",
        checkpoints=None,
        curves={"m": {"a": [1.0]}},
    )
    with pytest.raises(ConfigurationError):
        latex_result(result)
