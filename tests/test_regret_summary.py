"""Regret series helpers and run summaries."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.regret import regret_ratio_series, regret_series, total_regret
from repro.metrics.summary import summarize
from repro.simulation.history import History


def make(rewards, name="p"):
    rewards = np.asarray(rewards, dtype=float)
    return History(policy_name=name, rewards=rewards, arranged=np.ones_like(rewards))


def test_regret_series_is_the_cumulative_gap():
    policy = make([0, 1, 0])
    reference = make([1, 1, 1], name="OPT")
    assert np.allclose(regret_series(policy, reference), [1, 1, 2])


def test_regret_can_be_negative_step_by_step():
    """A policy can transiently beat OPT's greedy oracle on lucky coins."""
    policy = make([2, 0])
    reference = make([1, 1], name="OPT")
    assert np.allclose(regret_series(policy, reference), [-1, 0])


def test_total_regret_is_the_final_value():
    policy = make([0, 0, 1])
    reference = make([1, 1, 1], name="OPT")
    assert total_regret(policy, reference) == 2.0


def test_regret_ratio_is_inf_before_any_reward():
    policy = make([0, 1])
    reference = make([1, 1], name="OPT")
    ratios = regret_ratio_series(policy, reference)
    assert np.isinf(ratios[0])
    assert ratios[1] == pytest.approx(1.0)


def test_mismatched_horizons_rejected():
    with pytest.raises(ConfigurationError):
        regret_series(make([1]), make([1, 1]))


def test_summarize_without_reference():
    summary = summarize(make([1, 0, 1]))
    assert summary.total_reward == 2
    assert summary.total_regret is None
    assert summary.regret_ratio is None
    assert summary.overall_accept_ratio == pytest.approx(2 / 3)


def test_summarize_with_reference():
    summary = summarize(make([1, 0, 1]), make([1, 1, 1], name="OPT"))
    assert summary.total_regret == 1
    assert summary.regret_ratio == pytest.approx(0.5)


def test_summary_as_dict_round_trips_fields():
    summary = summarize(make([1, 1]), make([1, 1], name="OPT"))
    data = summary.as_dict()
    assert data["policy"] == "p"
    assert data["total_reward"] == 2
    assert data["total_regret"] == 0
