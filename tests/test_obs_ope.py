"""Off-policy evaluation from recorded decision logs.

The observatory's statistical promises: a deterministic policy
evaluated on its *own* log matches every round and IPS equals the
realized value exactly (self-consistency); streams without logged
propensities (TS, Random) disable the importance-weighted estimators
but keep DM; and the estimators rank a strong logging policy's value
consistently with its realized reward.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.datasets.synthetic import build_world
from repro.exceptions import ConfigurationError
from repro.obs.flight import (
    FlightRecorder,
    load_flight,
    make_replication_header,
    make_run_header,
)
from repro.obs.ope import evaluate_policy, render_ope_report
from repro.obs.replay import build_policy_from_spec
from repro.simulation.runner import run_policy

HORIZON = 60
RUN_SEED = 0
POLICY_SEED = 3


def _record(directory, config, names, horizon=HORIZON):
    specs = [{"name": name, "seed": POLICY_SEED} for name in names]
    world = build_world(config)
    recorder = FlightRecorder(
        directory, run=make_run_header(config, horizon, RUN_SEED, specs)
    )
    for spec in specs:
        policy = build_policy_from_spec(spec, world)
        run_policy(
            policy, world, horizon=horizon, run_seed=RUN_SEED, flight=recorder
        )
    recorder.close()


# ----------------------------------------------------------------------
# Self-consistency: a deterministic policy on its own log
# ----------------------------------------------------------------------
def test_deterministic_target_on_own_log_is_exact(tmp_path, small_config):
    _record(tmp_path, small_config, ["UCB"])
    report = evaluate_policy(load_flight(tmp_path), "UCB")
    assert report.match_rate == 1.0
    assert report.propensity_coverage == 1.0
    # Every round matches with propensity 1, so IPS *is* the realized mean.
    assert report.ips.value == pytest.approx(report.realized_value, abs=1e-12)
    assert report.snips.value == pytest.approx(report.realized_value, abs=1e-12)
    assert report.ips.low <= report.ips.value <= report.ips.high


def test_estimates_rank_consistently_with_realized_reward(tmp_path, small_config):
    """UCB evaluated on eGreedy traffic lands near UCB's true value."""
    _record(tmp_path, small_config, ["UCB", "eGreedy"], horizon=150)
    log = load_flight(tmp_path)
    ucb_true = evaluate_policy(log, "UCB", behavior="UCB").realized_value
    egreedy_true = evaluate_policy(
        log, "eGreedy", behavior="eGreedy"
    ).realized_value
    counterfactual = evaluate_policy(log, "UCB", behavior="eGreedy")
    assert counterfactual.match_rate > 0.0
    # DR is the robust headline estimate: closer to UCB's realized value
    # than to the (weaker) behavior policy's.
    assert abs(counterfactual.dr.value - ucb_true) < abs(
        counterfactual.dr.value - egreedy_true
    ) or ucb_true == pytest.approx(egreedy_true)


# ----------------------------------------------------------------------
# Propensity coverage gates the importance-weighted estimators
# ----------------------------------------------------------------------
def test_ts_behavior_disables_weighted_estimators(tmp_path, small_config):
    _record(tmp_path, small_config, ["TS"])
    report = evaluate_policy(load_flight(tmp_path), "UCB")
    assert report.propensity_coverage == 0.0
    assert report.dm.value is not None  # the model-based path survives
    for estimate in (report.ips, report.snips, report.dr):
        assert estimate.value is None
        assert "propensities logged" in estimate.note
    rendered = "\n".join(render_ope_report(report))
    assert "unavailable" in rendered and "DM" in rendered


def test_egreedy_propensities_enable_all_estimators(tmp_path, small_config):
    _record(tmp_path, small_config, ["eGreedy"])
    report = evaluate_policy(load_flight(tmp_path), "eGreedy")
    assert report.propensity_coverage == 1.0
    for estimate in (report.dm, report.ips, report.snips, report.dr):
        assert estimate.value is not None


# ----------------------------------------------------------------------
# Stream selection and log-mode guards
# ----------------------------------------------------------------------
def test_multi_stream_log_requires_behavior(tmp_path, small_config):
    _record(tmp_path, small_config, ["UCB", "eGreedy"])
    log = load_flight(tmp_path)
    with pytest.raises(ConfigurationError, match="--behavior"):
        evaluate_policy(log, "UCB")
    with pytest.raises(ConfigurationError, match="no logged stream"):
        evaluate_policy(log, "UCB", behavior="Exploit")
    assert evaluate_policy(log, "UCB", behavior="UCB").match_rate == 1.0


def test_replication_logs_are_replay_only(tmp_path, small_config):
    from repro.obs.flight import FlightLog, header_record

    header = make_replication_header(small_config, 10, [0, 1], ["UCB"], 1)
    log = FlightLog(path=None, records=[header_record(header)])
    with pytest.raises(ConfigurationError, match="replay-only"):
        evaluate_policy(log, "UCB")


def test_gap_in_the_behavior_stream_is_refused(tmp_path, small_config):
    from repro.exceptions import SchemaError

    _record(tmp_path, small_config, ["UCB"], horizon=10)
    log = load_flight(tmp_path)
    log.records[:] = [
        r for r in log.records if r.get("t") != 5
    ]
    with pytest.raises(SchemaError, match="gap"):
        evaluate_policy(log, "UCB")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_ope_text_and_json(tmp_path, small_config, capsys):
    _record(tmp_path, small_config, ["eGreedy"])
    assert cli_main(
        ["obs", "ope", str(tmp_path), "--policy", "UCB", "--bootstrap", "200"]
    ) == 0
    out = capsys.readouterr().out
    assert "target policy : UCB" in out and "SNIPS" in out
    assert cli_main(
        [
            "obs", "ope", str(tmp_path), "--policy", "UCB",
            "--bootstrap", "200", "--format", "json",
        ]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["target"] == "UCB"
    assert set(payload["estimates"]) == {"dm", "ips", "snips", "dr"}
    assert 0.0 <= payload["match_rate"] <= 1.0
