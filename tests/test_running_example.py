"""The paper's running example (Examples 1-3, Table 2) as a test.

Four events — football v1, basketball v2, concert v3, BBQ v4 — with
v1 conflicting with v2; the Table 2 feature vectors; a user with
capacity 2 then one with capacity 1.
"""

import numpy as np
import pytest

from repro.bandits import ThompsonSamplingPolicy, UcbPolicy
from repro.bandits.base import RoundView
from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.users import User

ROUND1 = np.array(
    [
        [0.1, 0.0, 0.5, 0.2],
        [0.2, 0.1, 0.0, 0.1],
        [0.2, 0.3, 0.0, 0.2],
        [0.0, 0.0, 1.0, 0.0],
    ]
)
ROUND2 = np.array(
    [
        [0.2, 0.1, 0.2, 0.1],
        [0.1, 0.2, 0.0, 0.1],
        [0.0, 0.0, 0.0, 0.5],
        [0.2, 0.1, 0.4, 0.0],
    ]
)


def make_view(time_step, contexts, capacity):
    return RoundView(
        time_step=time_step,
        user=User(user_id=time_step, capacity=capacity),
        contexts=contexts,
        remaining_capacities=np.full(4, 10.0),
        conflicts=ConflictGraph(4, [(0, 1)]),
    )


def test_arrangements_never_contain_both_v1_and_v2():
    for seed in range(10):
        ts = ThompsonSamplingPolicy(dim=4, seed=seed)
        arrangement = ts.select(make_view(1, ROUND1, capacity=2))
        assert not ({0, 1} <= set(arrangement))
        assert len(arrangement) == 2  # capacity filled (no other conflicts)


def test_example2_paper_theta_sample_reproduces_the_narrative():
    """With the paper's sampled theta, v2 and v3 are arranged to u1."""
    theta_tilde = np.array([-11.28, 0.93, -13.07, 18.60])
    scores = ROUND1 @ theta_tilde
    # The paper reports estimated rewards -3.94, -0.30, 1.74, -13.07.
    assert scores == pytest.approx([-3.942, -0.305, 1.743, -13.07], abs=0.01)
    from repro.oracle.greedy import oracle_greedy

    arrangement = oracle_greedy(
        scores, ConflictGraph(4, [(0, 1)]), np.full(4, 10.0), user_capacity=2
    )
    # v3 first (highest), then v2 (v1 is next-best but the paper arranges
    # v2; with these scores order is v3 > v2 > v1 > v4 and v1/v2 conflict).
    assert set(arrangement) == {1, 2}


def test_example3_ucb_round1_prior_bounds_rank_v4_and_v1_first():
    """With no data, UCB bounds reduce to alpha * ||x|| — the paper's
    1.10, 0.49, 0.82, 2.00 ordering (alpha=2, lambda=1)."""
    ucb = UcbPolicy(dim=4, lam=1.0, alpha=2.0)
    bounds = ucb.upper_confidence_bounds(ROUND1)
    expected = 2.0 * np.linalg.norm(ROUND1, axis=1)
    assert bounds == pytest.approx(expected)
    assert expected == pytest.approx([1.10, 0.49, 0.82, 2.00], abs=0.01)
    arrangement = ucb.select(make_view(1, ROUND1, capacity=2))
    assert set(arrangement) == {0, 3}  # v1 and v4, as in Example 3


def test_example3_ucb_round2_after_accepts_arranges_v3():
    ucb = UcbPolicy(dim=4, lam=1.0, alpha=2.0)
    view1 = make_view(1, ROUND1, capacity=2)
    arrangement = ucb.select(view1)
    ucb.observe(view1, arrangement, [1.0] * len(arrangement))
    arrangement2 = ucb.select(make_view(2, ROUND2, capacity=1))
    assert arrangement2 == [2]  # v3, as in Example 3
