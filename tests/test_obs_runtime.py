"""Telemetry-on-the-hot-path guarantees (DESIGN.md §5.8).

Three promises of the instrumented runtime, tested end to end:

1. **Common random numbers.**  Instrumentation never touches an RNG
   stream, so every policy's rewards are bit-identical with telemetry
   enabled or disabled (and under the fleet runner's shared stream).
2. **Complete coverage.**  An instrumented run records the documented
   per-policy metrics: select/observe timers, reward and theta-drift
   series, oracle counters, and the ``run_policy`` span.
3. **Deterministic worker merge.**  ``run_work_units`` merges worker
   snapshots in submission order, so the aggregate registry is the
   same for every ``jobs`` value.

Plus the ``fasea obs`` CLI verbs over artefacts written by a real run.
"""

import json

import numpy as np
import pytest

from repro.bandits import (
    EpsilonGreedyPolicy,
    ExploitPolicy,
    OptPolicy,
    RandomPolicy,
    ThompsonSamplingPolicy,
    UcbPolicy,
)
from repro.cli import main as cli_main
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.io.runstore import persist_run_telemetry
from repro.obs.cli import diff_snapshots, load_snapshot
from repro.obs.core import Instrumentation, current, use
from repro.parallel.executor import run_work_units
from repro.simulation.fleet import run_policy_fleet
from repro.simulation.runner import run_policy

HORIZON = 40


@pytest.fixture(scope="module")
def world():
    return build_world(
        SyntheticConfig(
            num_events=8,
            horizon=HORIZON,
            dim=4,
            capacity_mean=6.0,
            capacity_std=2.0,
            seed=3,
        )
    )


def _fresh_policies(world):
    dim = world.config.dim
    return {
        "UCB": UcbPolicy(dim=dim),
        "TS": ThompsonSamplingPolicy(dim=dim, seed=0),
        "eGreedy": EpsilonGreedyPolicy(dim=dim, seed=0),
        "Exploit": ExploitPolicy(dim=dim),
        "Random": RandomPolicy(seed=0),
        "OPT": OptPolicy(world.theta),
    }


# ----------------------------------------------------------------------
# 1. Instrumentation changes nothing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["UCB", "TS", "eGreedy", "Exploit", "Random", "OPT"])
def test_rewards_are_bit_identical_with_obs_on_and_off(world, name):
    plain = run_policy(_fresh_policies(world)[name], world, run_seed=1)
    instrumented = run_policy(
        _fresh_policies(world)[name], world, run_seed=1, obs=Instrumentation()
    )
    np.testing.assert_array_equal(plain.rewards, instrumented.rewards)
    np.testing.assert_array_equal(plain.arranged, instrumented.arranged)


def test_fleet_rewards_are_bit_identical_with_obs_on_and_off(world):
    plain = run_policy_fleet(_fresh_policies(world), world, run_seed=2)
    instrumented = run_policy_fleet(
        _fresh_policies(world), world, run_seed=2, obs=Instrumentation()
    )
    assert plain.keys() == instrumented.keys()
    for name in plain:
        np.testing.assert_array_equal(
            plain[name].rewards, instrumented[name].rewards
        )


# ----------------------------------------------------------------------
# 2. An instrumented run records the documented telemetry
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ucb_obs(world):
    obs = Instrumentation()
    run_policy(UcbPolicy(dim=world.config.dim), world, run_seed=1, obs=obs)
    return obs


def test_run_records_timers_series_and_counters(ucb_obs):
    snap = ucb_obs.snapshot()
    assert snap.counters["policy.UCB.rounds"] == HORIZON
    assert snap.counters["policy.UCB.oracle.calls"] == HORIZON
    assert snap.counters["env.rounds"] == HORIZON
    for timer in ("select_seconds", "observe_seconds"):
        assert snap.histograms[f"policy.UCB.{timer}"]["count"] == HORIZON
    for series in ("reward", "theta_drift", "ucb_width", "oracle.fill_rate_series"):
        assert len(snap.series[f"policy.UCB.{series}"]) == HORIZON


def test_theta_drift_shrinks_as_the_model_learns(ucb_obs):
    points = ucb_obs.snapshot().series["policy.UCB.theta_drift"]
    assert points[-1][1] < points[0][1]


def test_run_emits_a_run_policy_span(ucb_obs):
    spans = [r for r in ucb_obs.trace_records() if r.get("kind") == "span"]
    run_span = next(s for s in spans if s["name"] == "run_policy")
    assert run_span["attrs"]["policy"] == "UCB"
    assert run_span["attrs"]["horizon"] == HORIZON


def test_disabled_run_registers_nothing():
    # The module default stays NULL_OBS; nothing leaks between tests.
    assert current().enabled is False
    assert current().trace_records() == []


# ----------------------------------------------------------------------
# 3. Parallel merge determinism
# ----------------------------------------------------------------------
def _observed_square(value):
    obs = current()
    obs.counter("worker.calls").inc()
    obs.series("worker.values").append(int(value), float(value * value))
    return value * value


def _merged_run(jobs):
    obs = Instrumentation()
    with use(obs):
        results = run_work_units(_observed_square, [3, 1, 2], jobs=jobs)
    return results, obs.snapshot()


@pytest.mark.parametrize("jobs", [1, 2])
def test_worker_metrics_merge_identically_for_every_jobs_value(jobs):
    results, snap = _merged_run(jobs)
    assert results == [9, 1, 4]
    assert snap.counters["worker.calls"] == 3
    assert snap.counters["parallel.units"] == 3
    # Submission-order merge: series order matches unit order either way.
    assert snap.series["worker.values"] == [[3, 9.0], [1, 1.0], [2, 4.0]]
    assert snap.histograms["parallel.cell_seconds"]["count"] == 3
    assert len(snap.series["parallel.cell_wall_seconds"]) == 3


def test_serial_and_pool_runs_agree_up_to_timings():
    _, serial = _merged_run(jobs=1)
    _, pooled = _merged_run(jobs=2)
    drift = diff_snapshots(serial, pooled, ignore_timings=True)
    # Only the worker-count gauge may legitimately differ.
    assert all("parallel:workers" in line or "parallel.workers" in line for line in drift)


# ----------------------------------------------------------------------
# fasea obs CLI over real artefacts
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def run_dir(world, tmp_path_factory):
    directory = tmp_path_factory.mktemp("obs_run")
    obs = Instrumentation()
    run_policy(UcbPolicy(dim=world.config.dim), world, run_seed=1, obs=obs)
    persist_run_telemetry(directory, obs)
    return directory


def test_cli_summary_text(run_dir, capsys):
    assert cli_main(["obs", "summary", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "counters" in out and "policy.UCB.rounds" in out


def test_cli_summary_json_and_prometheus(run_dir, capsys):
    assert cli_main(["obs", "summary", "--format", "json", str(run_dir)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert cli_main(["obs", "summary", "--format", "prometheus", str(run_dir)]) == 0
    assert "# TYPE fasea_" in capsys.readouterr().out


def test_cli_summary_json_key_order_is_stable(run_dir, capsys):
    # The JSON document is a diffable artefact: section order is fixed
    # by the schema and every section's keys are sorted, so re-emitting
    # the same snapshot yields byte-identical output.
    assert cli_main(["obs", "summary", "--format", "json", str(run_dir)]) == 0
    first = capsys.readouterr().out
    assert cli_main(["obs", "summary", "--format", "json", str(run_dir)]) == 0
    assert capsys.readouterr().out == first
    payload = json.loads(first)
    assert list(payload) == [
        "counters",
        "gauges",
        "histograms",
        "meta",
        "series",
        "version",
    ]  # sort_keys=True at the serialiser: alphabetical, always
    for section in ("counters", "gauges", "histograms", "series"):
        keys = list(payload[section])
        assert keys == sorted(keys)


def test_cli_summary_quiet_still_emits_machine_formats(run_dir, capsys):
    assert (
        cli_main(["obs", "summary", "--quiet", "--format", "json", str(run_dir)]) == 0
    )
    assert json.loads(capsys.readouterr().out)["version"] == 1


def test_cli_trace_renders_the_span_tree(run_dir, capsys):
    assert cli_main(["obs", "trace", str(run_dir)]) == 0
    assert "run_policy" in capsys.readouterr().out


def test_cli_missing_artifacts_exit_2(tmp_path, capsys):
    assert cli_main(["obs", "summary", str(tmp_path)]) == 2
    assert "no metrics snapshot" in capsys.readouterr().err
    assert cli_main(["obs", "trace", str(tmp_path)]) == 2
    assert "no trace file" in capsys.readouterr().err


def test_cli_diff_agrees_with_itself(run_dir, capsys):
    assert cli_main(["obs", "diff", str(run_dir), str(run_dir)]) == 0
    assert "agree" in capsys.readouterr().err


def test_cli_diff_flags_drift(run_dir, tmp_path, capsys):
    snapshot = load_snapshot(run_dir)
    snapshot.counters["policy.UCB.rounds"] += 1
    snapshot.counters["brand.new"] = 1.0
    drifted = tmp_path / "metrics.json"
    from repro.obs.export import snapshot_to_json

    drifted.write_text(snapshot_to_json(snapshot))
    assert cli_main(["obs", "diff", str(run_dir), str(drifted)]) == 1
    captured = capsys.readouterr()
    assert "! counter:policy.UCB.rounds" in captured.out
    assert "+ counter:brand.new" in captured.out
    assert "drifted" in captured.err
