"""The SQLite run store."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.io.runstore import RunStore
from repro.simulation.history import History


def make_history(name="UCB", rewards=(1, 0, 1, 1)):
    rewards = np.asarray(rewards, dtype=float)
    return History(
        policy_name=name,
        rewards=rewards,
        arranged=np.ones_like(rewards) * 2,
        avg_round_time=0.002,
    )


@pytest.fixture
def store():
    with RunStore() as s:
        yield s


def test_record_and_get_run(store):
    run_id = store.record_history("fig1", make_history(), seed=3, run_seed=7)
    record = store.get_run(run_id)
    assert record.experiment == "fig1"
    assert record.policy == "UCB"
    assert record.seed == 3
    assert record.run_seed == 7
    assert record.horizon == 4
    assert record.total_reward == 3
    assert record.accept_ratio == pytest.approx(3 / 8)
    assert record.total_regret is None


def test_regret_recorded_against_reference(store):
    reference = make_history("OPT", rewards=(1, 1, 1, 1))
    run_id = store.record_history("fig1", make_history(), reference=reference)
    assert store.get_run(run_id).total_regret == 1.0


def test_curves_round_trip(store):
    reference = make_history("OPT", rewards=(1, 1, 1, 1))
    run_id = store.record_history(
        "fig1",
        make_history(),
        reference=reference,
        curve_checkpoints=[2, 4],
    )
    accept = store.curve(run_id, "accept_ratio")
    assert [step for step, _ in accept] == [2, 4]
    regrets = store.curve(run_id, "total_regrets")
    assert regrets[-1] == (4, 1.0)


def test_list_runs_filters(store):
    store.record_history("fig1", make_history("UCB"))
    store.record_history("fig1", make_history("TS"))
    store.record_history("fig2", make_history("UCB"))
    assert len(store.list_runs()) == 3
    assert len(store.list_runs(experiment="fig1")) == 2
    assert len(store.list_runs(policy="UCB")) == 2
    assert len(store.list_runs(experiment="fig1", policy="TS")) == 1


def test_policy_statistics_aggregates_across_seeds(store):
    store.record_history("fig1", make_history("UCB", rewards=(1, 1, 1, 1)), seed=0)
    store.record_history("fig1", make_history("UCB", rewards=(0, 0, 0, 0)), seed=1)
    stats = store.policy_statistics("fig1")
    assert stats["UCB"]["count"] == 2
    assert stats["UCB"]["mean_accept_ratio"] == pytest.approx(0.25)
    assert stats["UCB"]["min_accept_ratio"] == 0.0
    assert stats["UCB"]["max_accept_ratio"] == 0.5


def test_delete_run_cascades_to_curves(store):
    run_id = store.record_history(
        "fig1", make_history(), curve_checkpoints=[2, 4]
    )
    store.delete_run(run_id)
    assert store.count_runs() == 0
    assert store.curve(run_id, "accept_ratio") == []
    with pytest.raises(ConfigurationError):
        store.delete_run(run_id)


def test_unknown_run_id_raises(store):
    with pytest.raises(ConfigurationError):
        store.get_run(999)


def test_file_backed_store_persists(tmp_path):
    path = tmp_path / "runs.sqlite"
    with RunStore(path) as store:
        store.record_history("fig1", make_history())
    with RunStore(path) as reopened:
        assert reopened.count_runs() == 1
