"""Time/memory measurement utilities behind Tables 5-6."""

import pytest

from repro.bandits import RandomPolicy, UcbPolicy
from repro.exceptions import ConfigurationError
from repro.metrics.resources import (
    measure_memory,
    measure_policy_memory,
    time_policy_rounds,
)


def test_time_policy_rounds_returns_positive_average(small_world):
    avg = time_policy_rounds(RandomPolicy(seed=0), small_world, rounds=5)
    assert avg > 0


def test_time_policy_rounds_validates_rounds(small_world):
    with pytest.raises(ConfigurationError):
        time_policy_rounds(RandomPolicy(seed=0), small_world, rounds=0)


def test_random_is_faster_than_ucb(small_world):
    """The paper's Table 5 ordering at its cheapest end."""
    random_time = time_policy_rounds(RandomPolicy(seed=0), small_world, rounds=30)
    ucb_time = time_policy_rounds(UcbPolicy(dim=4), small_world, rounds=30)
    assert random_time < ucb_time


def test_measure_memory_returns_result_and_peak():
    result, peak = measure_memory(lambda: [0] * 100_000)
    assert len(result) == 100_000
    assert peak > 100_000  # a list of 100k ints dwarfs anything else


def test_measure_policy_memory(small_world):
    avg_time, peak = measure_policy_memory(
        lambda: UcbPolicy(dim=4), small_world, rounds=5
    )
    assert avg_time > 0
    assert peak > 0
