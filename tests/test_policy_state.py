"""Policy state save/restore (warm starting)."""

import numpy as np
import pytest

from repro.bandits import (
    ExploitPolicy,
    OptPolicy,
    RandomPolicy,
    ThompsonSamplingPolicy,
    UcbPolicy,
)
from repro.bandits.base import RoundView
from repro.bandits.disjoint import DisjointUcbPolicy
from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.users import User
from repro.exceptions import ConfigurationError
from repro.io.policy_state import load_policy_state, save_policy_state


def make_view(contexts):
    contexts = np.asarray(contexts, dtype=float)
    return RoundView(
        time_step=1,
        user=User(user_id=0, capacity=2),
        contexts=contexts,
        remaining_capacities=np.ones(contexts.shape[0]),
        conflicts=ConflictGraph(contexts.shape[0]),
    )


def train(policy, rounds=40, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(rounds):
        contexts = rng.uniform(size=(5, 3))
        view = make_view(contexts)
        arrangement = policy.select(view)
        rewards = [float(rng.integers(0, 2)) for _ in arrangement]
        policy.observe(view, arrangement, rewards)
    return policy


def test_shared_state_round_trip(tmp_path):
    trained = train(UcbPolicy(dim=3))
    path = save_policy_state(trained, tmp_path / "ucb")
    fresh = UcbPolicy(dim=3)
    load_policy_state(fresh, path)
    contexts = np.random.default_rng(1).uniform(size=(6, 3))
    assert np.allclose(
        fresh.predicted_scores(contexts), trained.predicted_scores(contexts)
    )
    assert fresh.model.state.num_observations == trained.model.state.num_observations


def test_state_transfers_across_policy_kinds(tmp_path):
    """UCB's statistics can warm-start an Exploit policy (same model)."""
    trained = train(UcbPolicy(dim=3))
    path = save_policy_state(trained, tmp_path / "ucb")
    exploit = ExploitPolicy(dim=3)
    load_policy_state(exploit, path)
    contexts = np.random.default_rng(1).uniform(size=(4, 3))
    assert np.allclose(
        exploit.predicted_scores(contexts), trained.predicted_scores(contexts)
    )


def test_ts_state_round_trip(tmp_path):
    trained = train(ThompsonSamplingPolicy(dim=3, seed=0))
    path = save_policy_state(trained, tmp_path / "ts")
    fresh = ThompsonSamplingPolicy(dim=3, seed=0)
    load_policy_state(fresh, path)
    assert np.allclose(fresh.model.state.y, trained.model.state.y)


def test_disjoint_state_round_trip(tmp_path):
    trained = train(DisjointUcbPolicy(num_events=5, dim=3))
    path = save_policy_state(trained, tmp_path / "disjoint")
    fresh = DisjointUcbPolicy(num_events=5, dim=3)
    load_policy_state(fresh, path)
    contexts = np.random.default_rng(1).uniform(size=(5, 3))
    assert np.allclose(
        fresh.predicted_scores(contexts), trained.predicted_scores(contexts)
    )


def test_suffix_normalisation(tmp_path):
    """Dotted and trailing-dot names normalise cleanly to ``.npz``.

    ``with_suffix`` treated everything after the last dot as a suffix,
    so ``model.`` became ``model..npz`` and ``model.v1`` lost its
    version tag; both now just append the extension.
    """
    trained = train(UcbPolicy(dim=3))
    assert save_policy_state(trained, tmp_path / "model.v1").name == "model.v1.npz"
    assert save_policy_state(trained, tmp_path / "model.").name == "model.npz"
    assert save_policy_state(trained, tmp_path / "plain").name == "plain.npz"
    assert save_policy_state(trained, tmp_path / "keep.npz").name == "keep.npz"


def test_shape_mismatch_names_both_shapes(tmp_path):
    shared = save_policy_state(train(UcbPolicy(dim=3)), tmp_path / "shared")
    with pytest.raises(ConfigurationError, match=r"Y\(3, 3\)") as excinfo:
        load_policy_state(UcbPolicy(dim=7), shared)
    assert "Y(7, 7)" in str(excinfo.value)
    assert "b(3,)" in str(excinfo.value) and "b(7,)" in str(excinfo.value)


def test_disjoint_shape_mismatch_restores_nothing(tmp_path):
    """Validation covers every model before any restore happens."""
    disjoint = save_policy_state(
        train(DisjointUcbPolicy(num_events=5, dim=3)), tmp_path / "disjoint"
    )
    receiver = DisjointUcbPolicy(num_events=5, dim=4)
    before = [receiver.model_for(i).state.y for i in range(5)]
    with pytest.raises(ConfigurationError, match="model 0"):
        load_policy_state(receiver, disjoint)
    for index, y in enumerate(before):
        np.testing.assert_array_equal(receiver.model_for(index).state.y, y)


def test_model_free_policies_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        save_policy_state(RandomPolicy(seed=0), tmp_path / "r")
    with pytest.raises(ConfigurationError):
        save_policy_state(OptPolicy(np.ones(3)), tmp_path / "o")


def test_kind_and_shape_mismatches_rejected(tmp_path):
    shared = save_policy_state(train(UcbPolicy(dim=3)), tmp_path / "shared")
    disjoint = save_policy_state(
        train(DisjointUcbPolicy(num_events=5, dim=3)), tmp_path / "disjoint"
    )
    with pytest.raises(ConfigurationError):
        load_policy_state(DisjointUcbPolicy(num_events=5, dim=3), shared)
    with pytest.raises(ConfigurationError):
        load_policy_state(UcbPolicy(dim=3), disjoint)
    with pytest.raises(ConfigurationError):
        load_policy_state(UcbPolicy(dim=7), shared)  # wrong dimension
    with pytest.raises(ConfigurationError):
        load_policy_state(
            DisjointUcbPolicy(num_events=3, dim=3), disjoint
        )  # wrong event count


def test_missing_and_malformed_files(tmp_path):
    with pytest.raises(ConfigurationError):
        load_policy_state(UcbPolicy(dim=3), tmp_path / "nope.npz")
    bad = tmp_path / "bad.npz"
    np.savez(bad, whatever=np.ones(2))
    with pytest.raises(ConfigurationError):
        load_policy_state(UcbPolicy(dim=3), bad)


def test_warm_start_actually_helps(tmp_path, small_world):
    """Pretrained UCB beats a cold UCB over a short deployment window."""
    from repro.simulation.runner import run_policy

    pretrained = UcbPolicy(dim=4)
    run_policy(pretrained, small_world, horizon=400, run_seed=1)
    path = save_policy_state(pretrained, tmp_path / "warm")

    warm = UcbPolicy(dim=4)
    load_policy_state(warm, path)
    cold = UcbPolicy(dim=4)
    warm_history = run_policy(warm, small_world, horizon=60, run_seed=2)
    cold_history = run_policy(cold, small_world, horizon=60, run_seed=2)
    assert warm_history.total_reward >= cold_history.total_reward
