"""Streaming-sink guarantees: crash safety, cadence, tail rendering.

The ISSUE's headline promise, tested directly: a run killed mid-stream
(up to and including ``SIGKILL``) leaves a loadable ``metrics.json``
and a ``trace.jsonl`` whose longest valid prefix parses.  Plus the
cadence triggers (rounds / seconds), atomic snapshot rotation, the
``fasea obs tail`` renderer, and bit-identity of results with the
sink attached.
"""

import io
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.exceptions import ConfigurationError
from repro.io.runstore import load_run_metrics, persist_run_telemetry
from repro.obs.console import Console
from repro.obs.core import Instrumentation
from repro.obs.stream import StreamingSink, run_tail, tail_lines
from repro.obs.trace import read_trace_jsonl

REPO_ROOT = Path(__file__).resolve().parents[1]


def _busy_obs(rounds=5):
    obs = Instrumentation()
    for t in range(rounds):
        obs.counter("env.rounds").inc()
        obs.series("policy.UCB.reward").append(t, float(t))
        obs.event("round_done", t=t)
    return obs


# ----------------------------------------------------------------------
# Construction / cadence
# ----------------------------------------------------------------------
def test_sink_rejects_degenerate_cadences(tmp_path):
    obs = Instrumentation()
    with pytest.raises(ConfigurationError, match="at least one flush trigger"):
        StreamingSink(
            tmp_path, obs, flush_every_rounds=None, flush_every_seconds=None
        )
    with pytest.raises(ConfigurationError, match="flush_every_rounds"):
        StreamingSink(tmp_path, obs, flush_every_rounds=0)
    with pytest.raises(ConfigurationError, match="flush_every_seconds"):
        StreamingSink(tmp_path, obs, flush_every_seconds=0.0)
    with pytest.raises(ConfigurationError, match="fsync_every_flushes"):
        StreamingSink(tmp_path, obs, fsync_every_flushes=0)


def test_round_trigger_flushes_on_cadence(tmp_path):
    obs = _busy_obs()
    sink = StreamingSink(
        tmp_path, obs, flush_every_rounds=10, flush_every_seconds=None
    )
    flushes = sum(sink.maybe_flush(1) for _ in range(35))
    assert flushes == 3
    assert sink.flush_count == 3
    assert sink.metrics_path.is_file()
    sink.close()
    assert sink.flush_count == 4  # close() always publishes a final one
    sink.close()
    assert sink.flush_count == 4  # ... and is idempotent


def test_time_trigger_fires_on_the_monotonic_clock(tmp_path, monkeypatch):
    fake_now = [100.0]
    monkeypatch.setattr("repro.obs.stream.monotonic", lambda: fake_now[0])
    sink = StreamingSink(
        tmp_path,
        _busy_obs(),
        flush_every_rounds=None,
        flush_every_seconds=5.0,
    )
    assert sink.maybe_flush(1) is False  # no time has passed
    fake_now[0] += 4.9
    assert sink.maybe_flush(1) is False
    fake_now[0] += 0.2
    assert sink.maybe_flush(1) is True
    assert sink.maybe_flush(1) is False  # timer reset by the flush


def test_unflushed_path_is_observable_via_flush_count(tmp_path):
    sink = StreamingSink(
        tmp_path, _busy_obs(), flush_every_rounds=1000, flush_every_seconds=None
    )
    for _ in range(50):
        assert sink.maybe_flush(1) is False
    assert sink.flush_count == 0


# ----------------------------------------------------------------------
# Crash safety
# ----------------------------------------------------------------------
def test_snapshot_on_disk_is_always_complete(tmp_path):
    obs = Instrumentation()
    sink = StreamingSink(
        tmp_path, obs, flush_every_rounds=1, flush_every_seconds=None
    )
    for t in range(20):
        obs.counter("env.rounds").inc()
        sink.maybe_flush(1)
        # Between any two flushes the published file is a complete,
        # schema-valid document (atomic os.replace) ...
        snapshot = load_run_metrics(tmp_path)
        assert snapshot.counters["env.rounds"] == t + 1
        # ... and no torn temp file is left behind.
        assert not list(tmp_path.glob(".*.tmp"))
    sink.close()


def test_truncated_trace_parses_to_longest_valid_prefix(tmp_path):
    obs = _busy_obs(rounds=8)
    sink = StreamingSink(
        tmp_path, obs, flush_every_rounds=1, flush_every_seconds=None
    )
    sink.flush()
    complete = read_trace_jsonl(sink.trace_path)
    assert len(complete) == 8  # the 8 round_done events
    # Simulate a crash mid-append: chop the file inside the last line.
    raw = sink.trace_path.read_bytes()
    sink.trace_path.write_bytes(raw[:-7])
    with pytest.raises(ConfigurationError):
        read_trace_jsonl(sink.trace_path)  # strict readers refuse
    recovered = read_trace_jsonl(sink.trace_path, strict=False)
    assert recovered == complete[:-1]  # longest valid prefix
    # The atomic snapshot is untouched by the torn trace.
    assert load_run_metrics(tmp_path).counters["env.rounds"] == 8


def test_sigkill_leaves_loadable_artifacts(tmp_path):
    """A real SIGKILL mid-stream: the streamed directory still loads."""
    script = """
import os, signal, sys
from repro.obs.core import Instrumentation
from repro.obs.stream import StreamingSink

directory = sys.argv[1]
obs = Instrumentation()
sink = StreamingSink(
    directory, obs, flush_every_rounds=1, flush_every_seconds=None
)
for t in range(12):
    obs.counter("env.rounds").inc()
    obs.event("round_done", t=t)
    sink.maybe_flush(1)
# Leave a half-written line in flight, then die without cleanup.
with open(sink.trace_path, "a", encoding="utf-8") as handle:
    handle.write('{"kind": "event", "name": "torn')
    handle.flush()
os.kill(os.getpid(), signal.SIGKILL)
"""
    run_dir = tmp_path / "victim"
    result = subprocess.run(
        [sys.executable, "-c", script, str(run_dir)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert result.returncode == -signal.SIGKILL
    snapshot = load_run_metrics(run_dir)
    assert snapshot.counters["env.rounds"] == 12
    recovered = read_trace_jsonl(run_dir / "trace.jsonl", strict=False)
    assert [r["name"] for r in recovered] == ["round_done"] * 12


def test_reused_directory_starts_the_trace_fresh(tmp_path):
    first = _busy_obs(rounds=3)
    with StreamingSink(
        tmp_path, first, flush_every_rounds=1, flush_every_seconds=None
    ):
        pass
    assert len(read_trace_jsonl(tmp_path / "trace.jsonl")) == 3
    second = _busy_obs(rounds=2)
    with StreamingSink(
        tmp_path, second, flush_every_rounds=1, flush_every_seconds=None
    ) as sink:
        sink.flush()
    # No leakage of the first run's records into the second run's prefix.
    assert len(read_trace_jsonl(tmp_path / "trace.jsonl")) == 2


def test_final_persist_overwrites_streamed_artifacts(tmp_path):
    obs = _busy_obs(rounds=4)
    with StreamingSink(
        tmp_path, obs, flush_every_rounds=1, flush_every_seconds=None
    ) as sink:
        sink.flush()
    persist_run_telemetry(tmp_path, obs)
    snapshot = load_run_metrics(tmp_path)
    assert snapshot.counters["env.rounds"] == 4
    assert read_trace_jsonl(tmp_path / "trace.jsonl") == obs.trace_records()


# ----------------------------------------------------------------------
# Streaming changes nothing (determinism contract)
# ----------------------------------------------------------------------
def test_rewards_are_bit_identical_with_streaming(tmp_path, small_world):
    from repro.bandits import UcbPolicy
    from repro.simulation.runner import run_policy

    plain = run_policy(
        UcbPolicy(dim=small_world.config.dim), small_world, run_seed=3
    )
    obs = Instrumentation()
    with StreamingSink(
        tmp_path, obs, flush_every_rounds=5, flush_every_seconds=None
    ) as sink:
        streamed = run_policy(
            UcbPolicy(dim=small_world.config.dim),
            small_world,
            run_seed=3,
            obs=obs,
            stream=sink,
        )
    assert sink.flush_count >= small_world.config.horizon // 5
    np.testing.assert_array_equal(plain.rewards, streamed.rewards)
    np.testing.assert_array_equal(plain.arranged, streamed.arranged)


# ----------------------------------------------------------------------
# fasea obs tail
# ----------------------------------------------------------------------
@pytest.fixture()
def live_dir(tmp_path):
    obs = Instrumentation()
    obs.counter("env.rounds").inc(40)
    obs.series("policy.UCB.reward").append(39, 7.5)
    obs.series("policy.TS.reward").append(39, 6.25)
    obs.series("policy.UCB.theta_drift").append(39, 0.125)
    hist = obs.histogram("policy.UCB.oracle.fill_rate")
    hist.observe(0.5)
    hist.observe(1.0)
    with StreamingSink(
        tmp_path, obs, flush_every_rounds=1, flush_every_seconds=None
    ) as sink:
        sink.flush()
    return tmp_path


def test_tail_lines_render_the_health_signals(live_dir):
    snapshot = load_run_metrics(live_dir)
    text = "\n".join(tail_lines(snapshot))
    assert "env.rounds=40" in text
    assert "UCB" in text and "last=7.5" in text
    assert "TS" in text and "last=6.25" in text
    assert "theta_drift" in text and "0.125" in text
    assert "oracle fill rate" in text and "mean=0.7500" in text


def test_tail_lines_of_empty_snapshot_say_so():
    assert tail_lines(Instrumentation().snapshot()) == ["(snapshot is empty)"]


def test_run_tail_once_renders_a_single_update(live_dir):
    out, err = io.StringIO(), io.StringIO()
    console = Console(quiet=False, color=False, out=out, err=err)
    assert run_tail(live_dir, console, max_updates=1) == 0
    assert "update 1" in err.getvalue()
    assert "env.rounds=40" in out.getvalue()


def test_run_tail_rerenders_when_the_snapshot_rotates(live_dir):
    obs = Instrumentation()
    obs.counter("env.rounds").inc(41)
    out, err = io.StringIO(), io.StringIO()
    console = Console(quiet=False, color=False, out=out, err=err)

    def advance(_interval):
        # Between polls the "running" process rotates a fresh snapshot.
        sink = StreamingSink(
            live_dir, obs, flush_every_rounds=1, flush_every_seconds=None
        )
        sink.flush()
        os.utime(live_dir / "metrics.json")  # guarantee a new mtime tick

    assert run_tail(live_dir, console, max_updates=2, sleep=advance) == 0
    assert "update 2" in err.getvalue()
    assert "env.rounds=41" in out.getvalue()


def test_cli_obs_tail_once(live_dir, capsys):
    assert cli_main(["obs", "tail", str(live_dir), "--once"]) == 0
    captured = capsys.readouterr()
    assert "env.rounds=40" in captured.out


def test_cli_obs_tail_missing_directory_is_an_error(tmp_path, capsys):
    code = cli_main(["obs", "summary", str(tmp_path / "nope")])
    assert code == 2
    assert capsys.readouterr().err


def test_streamed_snapshot_document_is_schema_versioned(live_dir):
    payload = json.loads((live_dir / "metrics.json").read_text())
    assert payload["version"] == 1
