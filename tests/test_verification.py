"""Post-hoc run verification, including failure injection."""

import numpy as np
import pytest

from repro.bandits import RandomPolicy
from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.events import EventStore
from repro.ebsn.ledger import RegistrationLedger
from repro.simulation.environment import FaseaEnvironment
from repro.simulation.history import History
from repro.simulation.verification import (
    VerificationError,
    verify_history_against_ledger,
    verify_ledger_constraints,
    verify_store_consistency,
)


def build_ledger(entries):
    ledger = RegistrationLedger()
    for t, (arranged, accepted) in enumerate(entries, start=1):
        ledger.record(t, user_id=t, arranged=arranged, accepted=accepted)
    return ledger


def test_clean_ledger_passes():
    ledger = build_ledger([([0, 2], [0]), ([1], [1])])
    verify_ledger_constraints(
        ledger,
        initial_capacities=np.array([2.0, 2.0, 2.0]),
        conflicts=ConflictGraph(3),
        max_user_capacity=5,
    )


def test_oversized_arrangement_detected():
    ledger = build_ledger([([0, 1, 2], [])])
    with pytest.raises(VerificationError, match="user capacity"):
        verify_ledger_constraints(
            ledger, np.ones(3), ConflictGraph(3), max_user_capacity=2
        )


def test_conflicting_arrangement_detected():
    ledger = build_ledger([([0, 1], [])])
    with pytest.raises(VerificationError, match="conflicts"):
        verify_ledger_constraints(
            ledger, np.ones(2), ConflictGraph(2, [(0, 1)]), max_user_capacity=5
        )


def test_capacity_overflow_detected():
    ledger = build_ledger([([0], [0]), ([0], [0])])
    with pytest.raises(VerificationError, match="beyond their capacity"):
        verify_ledger_constraints(
            ledger, np.array([1.0]), ConflictGraph(1), max_user_capacity=5
        )


def test_history_and_ledger_reconcile():
    ledger = build_ledger([([0, 1], [0]), ([2], [2])])
    history = History(
        policy_name="p", rewards=np.array([1.0, 1.0]), arranged=np.array([2.0, 1.0])
    )
    verify_history_against_ledger(history, ledger)


def test_history_reward_mismatch_detected():
    ledger = build_ledger([([0, 1], [0])])
    history = History(
        policy_name="p", rewards=np.array([2.0]), arranged=np.array([2.0])
    )
    with pytest.raises(VerificationError, match="reward mismatch"):
        verify_history_against_ledger(history, ledger)


def test_history_length_mismatch_detected():
    ledger = build_ledger([([0], [0])])
    history = History(
        policy_name="p", rewards=np.zeros(2), arranged=np.zeros(2)
    )
    with pytest.raises(VerificationError, match="entries"):
        verify_history_against_ledger(history, ledger)


def test_store_consistency_checks_remaining_capacity():
    store = EventStore.from_capacities([2, 2])
    ledger = build_ledger([([0], [0])])
    store.register(0)
    verify_store_consistency(store, ledger)
    store.register(0)  # extra registration not in the ledger
    with pytest.raises(VerificationError):
        verify_store_consistency(store, ledger)


def test_real_environment_run_passes_all_audits(small_world):
    """End-to-end: a genuine run reconciles on every axis."""
    env = FaseaEnvironment(small_world, run_seed=0)
    policy = RandomPolicy(seed=0)
    rewards = []
    arranged = []
    for _ in range(50):
        view = env.begin_round()
        arrangement = policy.select(view)
        round_rewards, _ = env.commit(arrangement)
        rewards.append(sum(round_rewards))
        arranged.append(len(arrangement))
    history = History(
        policy_name="Random",
        rewards=np.array(rewards),
        arranged=np.array(arranged),
    )
    verify_history_against_ledger(history, env.platform.ledger)
    verify_ledger_constraints(
        env.platform.ledger,
        small_world.capacities,
        small_world.conflicts,
        max_user_capacity=small_world.config.user_capacity_max,
    )
    verify_store_consistency(env.platform.store, env.platform.ledger)
