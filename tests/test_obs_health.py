"""Learning-health monitor guarantees (detectors, events, persistence).

The tentpole promises, tested directly: the sequential detectors alarm
on the shifts they advertise (and only after burn-in), the capacity
cliff localizes the golden drop-point rounds, the online monitor and
the offline snapshot replay produce identical events, monitoring never
moves one reward bit, and ``health.json`` round-trips through its
schema-versioned sink.
"""

import json

import numpy as np
import pytest

from repro.bandits import OptPolicy, UcbPolicy
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.exceptions import ConfigurationError, SchemaError
from repro.obs.core import NULL_OBS, Instrumentation
from repro.obs.health import (
    CAPACITY_CLIFF_DETECTOR,
    CUSUM_DETECTOR,
    EWMA_BAND_DETECTOR,
    HEALTH_EVENT_NAME,
    HEALTH_FILENAME,
    HEALTH_SCHEMA_VERSION,
    PAGE_HINKLEY_DETECTOR,
    CliffTracker,
    EwmaBand,
    HealthConfig,
    HealthMonitor,
    PageHinkley,
    WindowedCusum,
    drop_point_rows,
    events_from_snapshot,
    first_drain_rounds,
    health_event,
    load_health,
    persist_health,
    summarize_events,
)
from repro.simulation.runner import run_policy


@pytest.fixture(scope="module")
def tiny_world():
    """The seeded 6-event world whose OPT drop points are golden."""
    return build_world(
        SyntheticConfig(
            num_events=6,
            horizon=300,
            dim=3,
            capacity_mean=2.0,
            capacity_std=1.0,
            conflict_ratio=0.0,
            seed=1,
        )
    )


@pytest.fixture(scope="module")
def monitored_run(tiny_world):
    obs = Instrumentation()
    obs.health_monitor = HealthMonitor()
    history = run_policy(OptPolicy(tiny_world.theta), tiny_world, run_seed=0, obs=obs)
    return obs, history


# ----------------------------------------------------------------------
# Detector unit behavior
# ----------------------------------------------------------------------
def test_page_hinkley_alarms_on_level_shifts_both_ways():
    detector = PageHinkley(delta=0.005, threshold=5.0, burn_in=10)
    directions = [detector.update(0.0) for _ in range(50)]
    assert directions == [None] * 50  # steady signal: silent
    up = [detector.update(1.0) for _ in range(30)]
    assert "up" in up
    # The alarm reset the state: a drop back alarms again, downward.
    down = [detector.update(0.0) for _ in range(60)]
    assert "down" in down


def test_page_hinkley_respects_burn_in():
    detector = PageHinkley(delta=0.0, threshold=0.5, burn_in=100)
    values = [0.0] * 20 + [10.0] * 50
    assert all(detector.update(v) is None for v in values)  # < burn_in samples


def test_windowed_cusum_alarms_on_shift_but_not_constant():
    detector = WindowedCusum(window=20, threshold=5.0, drift=0.5)
    assert all(detector.update(0.0) is None for _ in range(100))  # sigma=0 guard
    detector = WindowedCusum(window=20, threshold=5.0, drift=0.5)
    rng = np.random.default_rng(0)
    for _ in range(40):
        assert detector.update(float(rng.normal(0.0, 0.1))) is None
    shifted = [detector.update(float(rng.normal(2.0, 0.1))) for _ in range(40)]
    assert "up" in shifted


def test_ewma_band_flags_spikes_then_recenters():
    detector = EwmaBand(alpha=0.2, k=3.0, burn_in=10)
    for _ in range(30):
        assert detector.update(1.0) is None
    assert detector.update(50.0) == "high"
    # The spike was folded in; a persistent new level stops alarming.
    results = [detector.update(50.0) for _ in range(40)]
    assert results[-1] is None
    assert detector.update(-200.0) == "low"


def test_cliff_tracker_marks_onset_and_completion():
    tracker = CliffTracker()
    assert tracker.update(5, 2, 3) == [("onset", 5)]
    assert tracker.update(5, 2, 3) == []  # duplicate drain: no new mark
    assert tracker.update(9, 0, 3) == []
    assert tracker.update(7, 1, 3) == [("complete", 9)]  # last first-drain wins
    assert tracker.onset_round == 5
    assert tracker.complete_round == 9
    assert tracker.first_rounds == {2: 5, 0: 9, 1: 7}


def test_health_config_validates():
    with pytest.raises(ConfigurationError):
        HealthConfig(ph_threshold=0.0)
    with pytest.raises(ConfigurationError):
        HealthConfig(ewma_alpha=1.5)
    with pytest.raises(ConfigurationError):
        HealthConfig(cusum_window=1)


# ----------------------------------------------------------------------
# The single drop-point implementation
# ----------------------------------------------------------------------
def test_first_drain_rounds_takes_the_earliest_report():
    points = [(12, 0.0), (4, 3.0), (2, 3.0), (15, 0.0)]
    assert first_drain_rounds(points) == {0: 12, 3: 2}


def test_drop_point_rows_match_the_golden_table(monitored_run):
    obs, _ = monitored_run
    assert drop_point_rows(obs.snapshot()) == [
        ("OPT", 0, 12),
        ("OPT", 1, 10),
        ("OPT", 2, 5),
        ("OPT", 3, 4),
        ("OPT", 4, 8),
        ("OPT", 5, 2),
    ]


# ----------------------------------------------------------------------
# Online monitoring on the golden world
# ----------------------------------------------------------------------
def test_cliff_detector_localizes_the_golden_drop_points(monitored_run):
    obs, _ = monitored_run
    summary = obs.health_monitor.summary()["OPT"]
    assert summary["cliff_onset"] == 2
    assert summary["cliff_complete"] == 12


def test_health_events_reach_the_trace(monitored_run):
    obs, _ = monitored_run
    traced = [
        record
        for record in obs.trace_records()
        if record.get("kind") == "event" and record["name"] == HEALTH_EVENT_NAME
    ]
    assert len(traced) == len(obs.health_monitor.events)
    cliff = [
        r for r in traced
        if r["fields"]["detector"] == CAPACITY_CLIFF_DETECTOR
    ]
    directions = [r["fields"]["direction"] for r in cliff]
    assert directions[:2] == ["onset", "complete"]


def test_health_events_carry_no_wall_clock_fields(monitored_run):
    obs, _ = monitored_run
    forbidden = {"time", "timestamp", "wall_time", "recorded_at"}
    for event in obs.health_monitor.events:
        assert event["schema_version"] == HEALTH_SCHEMA_VERSION
        assert not forbidden & set(event)


def test_monitoring_never_moves_a_reward_bit(tiny_world, monitored_run):
    _, monitored = monitored_run
    plain = run_policy(OptPolicy(tiny_world.theta), tiny_world, run_seed=0)
    np.testing.assert_array_equal(plain.rewards, monitored.rewards)
    np.testing.assert_array_equal(plain.arranged, monitored.arranged)


def test_monitoring_is_deterministic_across_repeat_runs(tiny_world, monitored_run):
    obs, _ = monitored_run
    again = Instrumentation()
    again.health_monitor = HealthMonitor()
    run_policy(OptPolicy(tiny_world.theta), tiny_world, run_seed=0, obs=again)
    assert again.health_monitor.events == obs.health_monitor.events


# ----------------------------------------------------------------------
# Online == offline (events_from_snapshot replays the same detectors)
# ----------------------------------------------------------------------
def test_offline_replay_reproduces_the_online_events(monitored_run):
    obs, _ = monitored_run
    assert events_from_snapshot(obs.snapshot()) == obs.health_monitor.events


def test_offline_replay_on_a_learning_policy(tiny_world):
    obs = Instrumentation()
    obs.health_monitor = HealthMonitor()
    run_policy(
        UcbPolicy(dim=tiny_world.config.dim), tiny_world, run_seed=0, obs=obs
    )
    assert events_from_snapshot(obs.snapshot()) == obs.health_monitor.events


# ----------------------------------------------------------------------
# Cell boundaries (serial path mirrors a fresh worker)
# ----------------------------------------------------------------------
def test_begin_cell_resets_detectors_but_keeps_events():
    monitor = HealthMonitor()
    monitor.observe_exhaustion(NULL_OBS, "A", 3, 0, 1)
    assert [e["direction"] for e in monitor.events] == ["onset", "complete"]
    monitor.begin_cell()
    # Fresh detector bank: the same policy label re-marks its onset,
    # exactly as a parallel worker's fresh monitor would.
    monitor.observe_exhaustion(NULL_OBS, "A", 7, 0, 2)
    assert len(monitor.events) == 3
    assert monitor.events[-1]["round"] == 7


def test_extend_appends_worker_events_in_order():
    monitor = HealthMonitor()
    worker_events = [
        health_event(PAGE_HINKLEY_DETECTOR, "UCB", "reward", 10, 1.0, "down")
    ]
    monitor.extend(worker_events)
    assert monitor.events == worker_events
    assert monitor.events_since(0) == worker_events
    assert monitor.events_since(1) == []


# ----------------------------------------------------------------------
# Summaries and persistence
# ----------------------------------------------------------------------
def test_summarize_events_groups_by_policy_and_detector():
    events = [
        health_event(CUSUM_DETECTOR, "TS", "reward", 40, 0.5, "down"),
        health_event(CUSUM_DETECTOR, "TS", "reward", 90, 0.25, "down"),
        health_event(EWMA_BAND_DETECTOR, "UCB", "fill", 60, 0.1, "low"),
        health_event(
            CAPACITY_CLIFF_DETECTOR, "OPT", "capacity_exhausted", 2, 5.0, "onset"
        ),
        health_event(
            CAPACITY_CLIFF_DETECTOR, "OPT", "capacity_exhausted", 12, 0.0, "complete"
        ),
    ]
    summary = summarize_events(events)
    assert summary["TS"]["detections"] == {CUSUM_DETECTOR: 2}
    assert summary["TS"]["changepoints"] == [40, 90]
    assert summary["OPT"]["cliff_onset"] == 2
    assert summary["OPT"]["cliff_complete"] == 12
    assert summary["UCB"]["detections"] == {EWMA_BAND_DETECTOR: 1}


def test_persist_and_load_health_round_trip(monitored_run, tmp_path):
    obs, _ = monitored_run
    path = persist_health(tmp_path, obs.health_monitor)
    assert path == tmp_path / HEALTH_FILENAME
    payload = load_health(tmp_path)
    assert payload["version"] == HEALTH_SCHEMA_VERSION
    assert payload["events"] == obs.health_monitor.events
    assert payload["summary"]["OPT"]["cliff_onset"] == 2


def test_load_health_rejects_future_schema(tmp_path):
    (tmp_path / HEALTH_FILENAME).write_text(
        json.dumps({"version": 99, "events": []})
    )
    with pytest.raises(SchemaError):
        load_health(tmp_path)


def test_load_health_missing_file_is_an_error(tmp_path):
    with pytest.raises(ConfigurationError):
        load_health(tmp_path)
