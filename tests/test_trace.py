"""Trace recording and replay."""

import numpy as np
import pytest

from repro.bandits import RandomPolicy, UcbPolicy
from repro.exceptions import ConfigurationError
from repro.simulation.runner import run_policy
from repro.simulation.trace import Trace, record_trace, replay_trace


@pytest.fixture(scope="module")
def trace(small_world_module):
    return record_trace(small_world_module, horizon=60, run_seed=3)


@pytest.fixture(scope="module")
def small_world_module():
    from repro.datasets.synthetic import SyntheticConfig, build_world

    return build_world(
        SyntheticConfig(
            num_events=12,
            horizon=200,
            dim=4,
            capacity_mean=8.0,
            capacity_std=3.0,
            conflict_ratio=0.25,
            seed=0,
        )
    )


def test_trace_shapes(trace):
    assert trace.horizon == 60
    assert trace.num_events == 12
    assert trace.dim == 4
    assert trace.contexts.shape == (60, 12, 4)
    assert trace.thresholds.shape == (60, 12)
    assert np.all((trace.thresholds >= 0) & (trace.thresholds < 1))
    assert np.all(trace.user_capacities >= 1)


def test_replay_equals_live_run(trace, small_world_module):
    """The defining property: replay == run_policy on the same seed."""
    live = run_policy(UcbPolicy(dim=4), small_world_module, horizon=60, run_seed=3)
    replayed = replay_trace(UcbPolicy(dim=4), trace)
    assert np.array_equal(live.rewards, replayed.rewards)
    assert np.array_equal(live.arranged, replayed.arranged)


def test_replay_pairs_different_policies(trace):
    """Two policies on one trace face identical coin flips."""
    ucb = replay_trace(UcbPolicy(dim=4), trace)
    random_run = replay_trace(RandomPolicy(seed=0), trace)
    assert ucb.horizon == random_run.horizon == 60
    assert ucb.total_reward >= random_run.total_reward  # paired comparison


def test_trace_round_trips_through_disk(trace, tmp_path):
    path = trace.save(tmp_path / "run")
    assert path.suffix == ".npz"
    loaded = Trace.load(path)
    assert np.array_equal(loaded.contexts, trace.contexts)
    assert np.array_equal(loaded.thresholds, trace.thresholds)
    assert loaded.conflict_pairs == trace.conflict_pairs
    replayed = replay_trace(UcbPolicy(dim=4), loaded)
    original = replay_trace(UcbPolicy(dim=4), trace)
    assert np.array_equal(replayed.rewards, original.rewards)


def test_trace_load_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        Trace.load(tmp_path / "missing.npz")
    bad = tmp_path / "bad.npz"
    np.savez(bad, stuff=np.ones(3))
    with pytest.raises(ConfigurationError):
        Trace.load(bad)


def test_trace_constructor_validation(trace):
    with pytest.raises(ConfigurationError):
        Trace(
            user_capacities=trace.user_capacities[:-1],
            contexts=trace.contexts,
            thresholds=trace.thresholds,
            theta=trace.theta,
            event_capacities=trace.event_capacities,
            conflict_pairs=trace.conflict_pairs,
        )
    with pytest.raises(ConfigurationError):
        Trace(
            user_capacities=trace.user_capacities,
            contexts=trace.contexts,
            thresholds=trace.thresholds,
            theta=trace.theta[:-1],
            event_capacities=trace.event_capacities,
            conflict_pairs=trace.conflict_pairs,
        )
