"""The round runner."""

import numpy as np
import pytest

from repro.bandits import OptPolicy, RandomPolicy, UcbPolicy
from repro.simulation.runner import run_policy


def test_runner_produces_a_full_history(small_world):
    history = run_policy(RandomPolicy(seed=0), small_world, horizon=50)
    assert history.horizon == 50
    assert history.policy_name == "Random"
    assert np.all(history.rewards <= history.arranged)
    assert history.avg_round_time > 0


def test_runner_defaults_to_the_config_horizon(small_world):
    history = run_policy(RandomPolicy(seed=0), small_world)
    assert history.horizon == small_world.config.horizon


def test_runner_is_deterministic_given_all_seeds(small_world):
    a = run_policy(UcbPolicy(dim=4), small_world, horizon=40, run_seed=2)
    b = run_policy(UcbPolicy(dim=4), small_world, horizon=40, run_seed=2)
    assert np.allclose(a.rewards, b.rewards)
    assert np.allclose(a.arranged, b.arranged)


def test_kendall_tracking_records_taus(small_world):
    history = run_policy(
        UcbPolicy(dim=4),
        small_world,
        horizon=60,
        track_kendall=True,
        kendall_checkpoints=[10, 30, 60],
    )
    assert history.kendall_steps.tolist() == [10, 30, 60]
    assert history.kendall_taus.shape == (3,)
    assert np.all(np.abs(history.kendall_taus) <= 1.0)


def test_opt_kendall_is_perfect(small_world):
    history = run_policy(
        OptPolicy(small_world.theta),
        small_world,
        horizon=20,
        track_kendall=True,
        kendall_checkpoints=[10, 20],
    )
    assert np.allclose(history.kendall_taus, 1.0)


def test_no_kendall_by_default(small_world):
    history = run_policy(RandomPolicy(seed=0), small_world, horizon=10)
    assert history.kendall_steps is None
    assert history.kendall_taus is None


def test_arrangement_sizes_respect_user_capacity(small_world):
    history = run_policy(OptPolicy(small_world.theta), small_world, horizon=100)
    assert history.arranged.max() <= small_world.config.user_capacity_max
