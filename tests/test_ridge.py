"""RidgeState: sufficient statistics and Sherman-Morrison maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError
from repro.linalg.ridge import RidgeState


def test_initial_state_is_the_prior():
    state = RidgeState(dim=3, lam=2.0)
    assert np.allclose(state.y, 2.0 * np.eye(3))
    assert np.allclose(state.b, np.zeros(3))
    assert np.allclose(state.theta_hat(), np.zeros(3))
    assert state.num_observations == 0


def test_invalid_construction():
    with pytest.raises(ConfigurationError):
        RidgeState(dim=0)
    with pytest.raises(ConfigurationError):
        RidgeState(dim=2, lam=0.0)
    with pytest.raises(ConfigurationError):
        RidgeState(dim=2, refresh_every=-1)


def test_update_accumulates_y_and_b():
    state = RidgeState(dim=2, lam=1.0)
    x = np.array([1.0, 2.0])
    state.update(x, reward=1.0)
    assert np.allclose(state.y, np.eye(2) + np.outer(x, x))
    assert np.allclose(state.b, x)
    assert state.num_observations == 1


def test_update_rejects_wrong_dimension():
    state = RidgeState(dim=2)
    with pytest.raises(ConfigurationError):
        state.update(np.ones(3), 1.0)


def test_update_batch_matches_sequential_updates():
    xs = np.array([[1.0, 0.5], [0.2, -0.3], [0.0, 1.0]])
    rewards = np.array([1.0, 0.0, 1.0])
    sequential = RidgeState(dim=2)
    for x, r in zip(xs, rewards):
        sequential.update(x, r)
    batched = RidgeState(dim=2)
    batched.update_batch(xs, rewards)
    assert np.allclose(sequential.y, batched.y)
    assert np.allclose(sequential.b, batched.b)


def test_update_batch_rejects_mismatched_lengths():
    state = RidgeState(dim=2)
    with pytest.raises(ConfigurationError):
        state.update_batch(np.ones((2, 2)), np.ones(3))


def test_theta_hat_recovers_true_weights_from_clean_data():
    true_theta = np.array([0.5, -0.3, 0.8])
    rng = np.random.default_rng(0)
    state = RidgeState(dim=3, lam=1e-6)
    for _ in range(200):
        x = rng.normal(size=3)
        state.update(x, float(x @ true_theta))
    assert np.allclose(state.theta_hat(), true_theta, atol=1e-4)


@settings(max_examples=50, deadline=None)
@given(
    xs=arrays(
        np.float64,
        (10, 3),
        elements=st.floats(-1.0, 1.0, allow_nan=False),
    ),
    rewards=arrays(np.float64, 10, elements=st.floats(0.0, 1.0)),
)
def test_sherman_morrison_matches_direct_inverse(xs, rewards):
    """The incrementally maintained inverse equals the direct one."""
    incremental = RidgeState(dim=3, lam=1.0, refresh_every=10_000)
    direct = RidgeState(dim=3, lam=1.0, refresh_every=0)
    for x, r in zip(xs, rewards):
        incremental.update(x, float(r))
        direct.update(x, float(r))
    assert np.allclose(incremental.y_inv, direct.y_inv, atol=1e-8)
    assert np.allclose(incremental.theta_hat(), direct.theta_hat(), atol=1e-8)


def test_periodic_refresh_keeps_inverse_accurate():
    state = RidgeState(dim=4, lam=1.0, refresh_every=7)
    rng = np.random.default_rng(1)
    for _ in range(100):
        state.update(rng.normal(size=4), float(rng.integers(0, 2)))
    assert np.allclose(state.y_inv, np.linalg.inv(state.y), atol=1e-9)


def test_confidence_widths_shrink_along_observed_directions():
    state = RidgeState(dim=2, lam=1.0)
    direction = np.array([1.0, 0.0])
    before = state.confidence_widths(direction)[0]
    for _ in range(50):
        state.update(direction, 1.0)
    after_seen = state.confidence_widths(direction)[0]
    after_unseen = state.confidence_widths(np.array([0.0, 1.0]))[0]
    assert after_seen < before / 5
    assert after_unseen == pytest.approx(before)


def test_confidence_widths_rejects_wrong_dimension():
    state = RidgeState(dim=2)
    with pytest.raises(ConfigurationError):
        state.confidence_widths(np.ones((3, 3)))


def test_reset_restores_the_prior():
    state = RidgeState(dim=2, lam=0.5)
    state.update(np.ones(2), 1.0)
    state.reset()
    assert np.allclose(state.y, 0.5 * np.eye(2))
    assert np.allclose(state.b, np.zeros(2))
    assert state.num_observations == 0


def test_properties_return_copies():
    state = RidgeState(dim=2)
    state.y[0, 0] = 999.0
    state.b[0] = 999.0
    assert state.y[0, 0] == 1.0
    assert state.b[0] == 0.0


# ----------------------------------------------------------------------
# Batched Woodbury ≡ sequential Sherman-Morrison ≡ direct inversion
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    xs=arrays(
        np.float64,
        (12, 4),
        elements=st.floats(-1.0, 1.0, allow_nan=False),
    ),
    rewards=arrays(np.float64, 12, elements=st.floats(0.0, 1.0)),
    splits=st.lists(st.integers(0, 12), min_size=0, max_size=4),
)
def test_batched_woodbury_matches_sequential_and_direct(xs, rewards, splits):
    """Random batch partitions (including k=0 and k=1 chunks) agree with
    per-observation Sherman-Morrison and with direct inversion to 1e-9."""
    bounds = sorted(set([0, *splits, 12]))
    batched = RidgeState(dim=4, lam=1.0, refresh_every=10_000)
    sequential = RidgeState(dim=4, lam=1.0, refresh_every=10_000)
    direct = RidgeState(dim=4, lam=1.0, refresh_every=0)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        batched.update_batch(xs[lo:hi], rewards[lo:hi])
        for x, r in zip(xs[lo:hi], rewards[lo:hi]):
            sequential.update(x, float(r))
        direct.update_batch(xs[lo:hi], rewards[lo:hi])
    probe = np.vstack([np.eye(4), xs])
    for other in (sequential, direct):
        assert np.allclose(batched.y, other.y, atol=1e-9)
        assert np.allclose(batched.b, other.b, atol=1e-9)
        assert np.allclose(batched.y_inv, other.y_inv, atol=1e-9)
        assert np.allclose(batched.theta_hat(), other.theta_hat(), atol=1e-9)
        assert np.allclose(
            batched.confidence_widths(probe),
            other.confidence_widths(probe),
            atol=1e-9,
        )
    assert batched.num_observations == sequential.num_observations == 12


def test_update_batch_empty_batch_is_a_noop():
    state = RidgeState(dim=3)
    before_y, before_b = state.y, state.b
    state.update_batch(np.zeros((0, 3)), np.zeros(0))
    assert np.array_equal(state.y, before_y)
    assert np.array_equal(state.b, before_b)
    assert state.num_observations == 0


def test_update_batch_single_row_matches_update():
    """k=1: a (d,)-shaped and a (1, d)-shaped batch equal one update()."""
    x = np.array([0.3, -0.7])
    for batch in (x, x.reshape(1, 2)):
        via_batch = RidgeState(dim=2)
        via_batch.update_batch(batch, np.array([1.0]))
        via_update = RidgeState(dim=2)
        via_update.update(x, 1.0)
        assert np.allclose(via_batch.y_inv, via_update.y_inv, atol=1e-12)
        assert np.allclose(
            via_batch.theta_hat(), via_update.theta_hat(), atol=1e-12
        )


def test_update_batch_rejects_wrong_row_dimension():
    state = RidgeState(dim=2)
    with pytest.raises(ConfigurationError):
        state.update_batch(np.ones((2, 3)), np.ones(2))


def test_update_batch_triggers_periodic_refresh():
    """Rank counted per observation: a k-batch crossing the refresh
    boundary recomputes the inverse from scratch."""
    state = RidgeState(dim=3, lam=1.0, refresh_every=5)
    rng = np.random.default_rng(3)
    for _ in range(4):
        state.update_batch(rng.normal(size=(3, 3)), rng.uniform(size=3))
    assert np.allclose(state.y_inv, np.linalg.inv(state.y), atol=1e-9)


# ----------------------------------------------------------------------
# theta_hat caching
# ----------------------------------------------------------------------
def test_theta_hat_cache_returns_equal_arrays_and_survives_mutation():
    state = RidgeState(dim=2)
    state.update(np.array([1.0, 0.5]), 1.0)
    first = state.theta_hat()
    first[:] = 123.0  # mutating the returned copy must not corrupt the cache
    again = state.theta_hat()
    assert not np.array_equal(first, again)
    assert np.allclose(again, state.y_inv @ state.b)


def test_theta_hat_cache_invalidated_by_every_mutator():
    rng = np.random.default_rng(7)
    state = RidgeState(dim=3)

    def fresh():
        return np.linalg.solve(state.y, state.b)

    state.theta_hat()  # warm the cache
    state.update(rng.normal(size=3), 1.0)
    assert np.allclose(state.theta_hat(), fresh(), atol=1e-9)
    state.update_batch(rng.normal(size=(4, 3)), rng.uniform(size=4))
    assert np.allclose(state.theta_hat(), fresh(), atol=1e-9)
    snapshot_y, snapshot_b = state.y, state.b
    state.reset()
    assert np.allclose(state.theta_hat(), np.zeros(3))
    state.restore(snapshot_y, snapshot_b, num_observations=5)
    assert np.allclose(state.theta_hat(), fresh(), atol=1e-9)
