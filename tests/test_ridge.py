"""RidgeState: sufficient statistics and Sherman-Morrison maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError
from repro.linalg.ridge import RidgeState


def test_initial_state_is_the_prior():
    state = RidgeState(dim=3, lam=2.0)
    assert np.allclose(state.y, 2.0 * np.eye(3))
    assert np.allclose(state.b, np.zeros(3))
    assert np.allclose(state.theta_hat(), np.zeros(3))
    assert state.num_observations == 0


def test_invalid_construction():
    with pytest.raises(ConfigurationError):
        RidgeState(dim=0)
    with pytest.raises(ConfigurationError):
        RidgeState(dim=2, lam=0.0)
    with pytest.raises(ConfigurationError):
        RidgeState(dim=2, refresh_every=-1)


def test_update_accumulates_y_and_b():
    state = RidgeState(dim=2, lam=1.0)
    x = np.array([1.0, 2.0])
    state.update(x, reward=1.0)
    assert np.allclose(state.y, np.eye(2) + np.outer(x, x))
    assert np.allclose(state.b, x)
    assert state.num_observations == 1


def test_update_rejects_wrong_dimension():
    state = RidgeState(dim=2)
    with pytest.raises(ConfigurationError):
        state.update(np.ones(3), 1.0)


def test_update_batch_matches_sequential_updates():
    xs = np.array([[1.0, 0.5], [0.2, -0.3], [0.0, 1.0]])
    rewards = np.array([1.0, 0.0, 1.0])
    sequential = RidgeState(dim=2)
    for x, r in zip(xs, rewards):
        sequential.update(x, r)
    batched = RidgeState(dim=2)
    batched.update_batch(xs, rewards)
    assert np.allclose(sequential.y, batched.y)
    assert np.allclose(sequential.b, batched.b)


def test_update_batch_rejects_mismatched_lengths():
    state = RidgeState(dim=2)
    with pytest.raises(ConfigurationError):
        state.update_batch(np.ones((2, 2)), np.ones(3))


def test_theta_hat_recovers_true_weights_from_clean_data():
    true_theta = np.array([0.5, -0.3, 0.8])
    rng = np.random.default_rng(0)
    state = RidgeState(dim=3, lam=1e-6)
    for _ in range(200):
        x = rng.normal(size=3)
        state.update(x, float(x @ true_theta))
    assert np.allclose(state.theta_hat(), true_theta, atol=1e-4)


@settings(max_examples=50, deadline=None)
@given(
    xs=arrays(
        np.float64,
        (10, 3),
        elements=st.floats(-1.0, 1.0, allow_nan=False),
    ),
    rewards=arrays(np.float64, 10, elements=st.floats(0.0, 1.0)),
)
def test_sherman_morrison_matches_direct_inverse(xs, rewards):
    """The incrementally maintained inverse equals the direct one."""
    incremental = RidgeState(dim=3, lam=1.0, refresh_every=10_000)
    direct = RidgeState(dim=3, lam=1.0, refresh_every=0)
    for x, r in zip(xs, rewards):
        incremental.update(x, float(r))
        direct.update(x, float(r))
    assert np.allclose(incremental.y_inv, direct.y_inv, atol=1e-8)
    assert np.allclose(incremental.theta_hat(), direct.theta_hat(), atol=1e-8)


def test_periodic_refresh_keeps_inverse_accurate():
    state = RidgeState(dim=4, lam=1.0, refresh_every=7)
    rng = np.random.default_rng(1)
    for _ in range(100):
        state.update(rng.normal(size=4), float(rng.integers(0, 2)))
    assert np.allclose(state.y_inv, np.linalg.inv(state.y), atol=1e-9)


def test_confidence_widths_shrink_along_observed_directions():
    state = RidgeState(dim=2, lam=1.0)
    direction = np.array([1.0, 0.0])
    before = state.confidence_widths(direction)[0]
    for _ in range(50):
        state.update(direction, 1.0)
    after_seen = state.confidence_widths(direction)[0]
    after_unseen = state.confidence_widths(np.array([0.0, 1.0]))[0]
    assert after_seen < before / 5
    assert after_unseen == pytest.approx(before)


def test_confidence_widths_rejects_wrong_dimension():
    state = RidgeState(dim=2)
    with pytest.raises(ConfigurationError):
        state.confidence_widths(np.ones((3, 3)))


def test_reset_restores_the_prior():
    state = RidgeState(dim=2, lam=0.5)
    state.update(np.ones(2), 1.0)
    state.reset()
    assert np.allclose(state.y, 0.5 * np.eye(2))
    assert np.allclose(state.b, np.zeros(2))
    assert state.num_observations == 0


def test_properties_return_copies():
    state = RidgeState(dim=2)
    state.y[0, 0] = 999.0
    state.b[0] = 999.0
    assert state.y[0, 0] == 1.0
    assert state.b[0] == 0.0
