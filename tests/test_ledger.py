"""The append-only registration ledger."""

import pytest

from repro.ebsn.ledger import LedgerEntry, RegistrationLedger
from repro.exceptions import LedgerError


def test_entry_reward_is_number_of_accepted_events():
    entry = LedgerEntry(time_step=1, user_id=0, arranged=(1, 2, 3), accepted=(1, 3))
    assert entry.reward == 2
    assert entry.num_arranged == 3


def test_entry_rejects_duplicates_and_non_subsets():
    with pytest.raises(LedgerError):
        LedgerEntry(time_step=1, user_id=0, arranged=(1, 1), accepted=())
    with pytest.raises(LedgerError):
        LedgerEntry(time_step=1, user_id=0, arranged=(1,), accepted=(2,))


def test_ledger_requires_increasing_time_steps():
    ledger = RegistrationLedger()
    ledger.record(1, 0, [0], [0])
    with pytest.raises(LedgerError):
        ledger.record(1, 1, [1], [])
    with pytest.raises(LedgerError):
        ledger.record(0, 1, [1], [])


def test_ledger_derived_totals():
    ledger = RegistrationLedger()
    ledger.record(1, 0, [0, 1], [0])
    ledger.record(2, 1, [2, 3], [2, 3])
    ledger.record(3, 2, [1], [])
    assert len(ledger) == 3
    assert ledger.total_reward() == 3
    assert ledger.total_arranged() == 5
    assert ledger.overall_accept_ratio() == pytest.approx(3 / 5)
    assert ledger.rewards_by_step() == [1, 2, 0]


def test_ledger_registrations_per_event():
    ledger = RegistrationLedger()
    ledger.record(1, 0, [0, 1], [0, 1])
    ledger.record(2, 1, [0], [0])
    assert ledger.registrations_per_event() == {0: 2, 1: 1}


def test_empty_ledger_accept_ratio_is_zero():
    assert RegistrationLedger().overall_accept_ratio() == 0.0


def test_ledger_iteration_and_indexing():
    ledger = RegistrationLedger()
    first = ledger.record(1, 0, [0], [])
    assert list(ledger) == [first]
    assert ledger[0] is first
