"""The OnlineGreedy-GEACC baseline."""

import numpy as np
import pytest

from repro.baselines.online_greedy import OnlineGreedyPolicy, tag_interestingness
from repro.bandits.base import RoundView
from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.events import Event
from repro.ebsn.users import User
from repro.exceptions import ConfigurationError


def make_events():
    return [
        Event(0, 10, tags=("music", "jazz")),
        Event(1, 10, tags=("sports",)),
        Event(2, 10, tags=("music", "rock")),
    ]


def make_view(capacity=2, pairs=()):
    return RoundView(
        time_step=1,
        user=User(user_id=0, capacity=capacity),
        contexts=np.zeros((3, 4)),
        remaining_capacities=np.ones(3),
        conflicts=ConflictGraph(3, pairs),
    )


def test_tag_interestingness_is_jaccard():
    assert tag_interestingness({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
    assert tag_interestingness({"a"}, {"a"}) == 1.0
    assert tag_interestingness(set(), set()) == 0.0
    assert tag_interestingness({"a"}, {"b"}) == 0.0


def test_online_greedy_prefers_matching_tags():
    policy = OnlineGreedyPolicy(make_events(), preferred_tags={"music", "jazz"})
    assert policy.select(make_view(capacity=1)) == [0]


def test_online_greedy_never_adapts():
    policy = OnlineGreedyPolicy(make_events(), preferred_tags={"sports"})
    view = make_view(capacity=1)
    first = policy.select(view)
    policy.observe(view, first, [0.0])  # feedback is ignored (base no-op)
    assert policy.select(view) == first


def test_online_greedy_respects_conflicts():
    policy = OnlineGreedyPolicy(make_events(), preferred_tags={"music"})
    arrangement = policy.select(make_view(capacity=3, pairs=[(0, 2)]))
    assert not (0 in arrangement and 2 in arrangement)


def test_online_greedy_validation():
    with pytest.raises(ConfigurationError):
        OnlineGreedyPolicy([], preferred_tags={"a"})
    policy = OnlineGreedyPolicy(make_events(), preferred_tags={"a"})
    bad_view = RoundView(
        time_step=1,
        user=User(user_id=0, capacity=1),
        contexts=np.zeros((5, 4)),
        remaining_capacities=np.ones(5),
        conflicts=ConflictGraph(5),
    )
    with pytest.raises(ConfigurationError):
        policy.select(bad_view)
