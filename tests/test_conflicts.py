"""Conflict graphs: both backends, the ratio generator, equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebsn.conflicts import (
    ConflictGraph,
    DenseConflictGraph,
    SparseConflictGraph,
    random_conflicts,
)
from repro.exceptions import ConfigurationError

BACKENDS = [DenseConflictGraph, SparseConflictGraph]


@pytest.mark.parametrize("backend", BACKENDS)
def test_basic_pair_queries(backend):
    graph = backend(4, [(0, 1), (2, 3)])
    assert graph.conflicts(0, 1)
    assert graph.conflicts(1, 0)
    assert not graph.conflicts(0, 2)
    assert graph.num_pairs() == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_self_conflicts_and_bad_ids_rejected(backend):
    graph = backend(3)
    with pytest.raises(ConfigurationError):
        graph.add(1, 1)
    with pytest.raises(ConfigurationError):
        graph.add(0, 5)
    with pytest.raises(ConfigurationError):
        graph.conflicts(0, 9)


@pytest.mark.parametrize("backend", BACKENDS)
def test_duplicate_pairs_counted_once(backend):
    graph = backend(3, [(0, 1), (1, 0), (0, 1)])
    assert graph.num_pairs() == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_neighbors_and_masks(backend):
    graph = backend(4, [(0, 1), (0, 2)])
    assert graph.neighbors(0) == frozenset({1, 2})
    assert graph.neighbor_mask(0).tolist() == [False, True, True, False]
    assert graph.conflict_mask([0]).tolist() == [False, True, True, False]
    assert graph.conflict_mask([]).tolist() == [False] * 4


@pytest.mark.parametrize("backend", BACKENDS)
def test_is_independent(backend):
    graph = backend(4, [(0, 1)])
    assert graph.is_independent([0, 2, 3])
    assert not graph.is_independent([0, 1])
    assert graph.is_independent([])


@pytest.mark.parametrize("backend", BACKENDS)
def test_pairs_iteration_is_canonical(backend):
    graph = backend(4, [(2, 3), (1, 0)])
    assert sorted(graph.pairs()) == [(0, 1), (2, 3)]


def test_conflict_ratio_matches_definition():
    graph = DenseConflictGraph(4, [(0, 1), (2, 3), (0, 3)])
    assert graph.conflict_ratio() == pytest.approx(3 / 6)


def test_factory_picks_dense_for_small_instances():
    graph = ConflictGraph(10, [(0, 1)])
    assert isinstance(graph, DenseConflictGraph)


def test_factory_honours_explicit_backend_choice():
    graph = ConflictGraph(10, [(0, 1)], dense=False)
    assert isinstance(graph, SparseConflictGraph)


@settings(max_examples=30, deadline=None)
@given(
    num_events=st.integers(2, 12),
    pair_seed=st.integers(0, 1000),
    ratio=st.floats(0.0, 1.0),
)
def test_dense_and_sparse_backends_agree(num_events, pair_seed, ratio):
    pairs = random_conflicts(num_events, ratio, seed=pair_seed)
    dense = DenseConflictGraph(num_events, pairs)
    sparse = SparseConflictGraph(num_events, pairs)
    assert dense.num_pairs() == sparse.num_pairs()
    assert sorted(dense.pairs()) == sorted(sparse.pairs())
    for i in range(num_events):
        assert dense.neighbors(i) == sparse.neighbors(i)
        assert np.array_equal(dense.neighbor_mask(i), sparse.neighbor_mask(i))


@pytest.mark.parametrize("ratio", [0.0, 0.25, 0.5, 0.75, 1.0])
def test_random_conflicts_hits_target_ratio_exactly(ratio):
    num_events = 20
    pairs = random_conflicts(num_events, ratio, seed=1)
    total = num_events * (num_events - 1) // 2
    assert len(pairs) == round(ratio * total)
    assert len(set(pairs)) == len(pairs)  # distinct
    for i, j in pairs:
        assert 0 <= i < j < num_events


def test_random_conflicts_full_ratio_is_all_pairs():
    pairs = random_conflicts(6, 1.0, seed=0)
    assert sorted(pairs) == [(i, j) for i in range(6) for j in range(i + 1, 6)]


def test_random_conflicts_validation():
    with pytest.raises(ConfigurationError):
        random_conflicts(5, 1.5)
    with pytest.raises(ConfigurationError):
        random_conflicts(0, 0.5)


def test_random_conflicts_deterministic_in_seed():
    assert random_conflicts(15, 0.3, seed=4) == random_conflicts(15, 0.3, seed=4)
