"""Paired permutation tests and dominance counts."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.significance import dominance_count, paired_permutation_test


def test_identical_samples_are_not_significant():
    values = [1.0, 2.0, 3.0, 4.0]
    mean_diff, p_value = paired_permutation_test(values, values)
    assert mean_diff == 0.0
    assert p_value == 1.0


def test_consistent_large_gap_is_significant():
    first = [10.0, 11.0, 12.0, 9.0, 10.5, 11.5, 10.2, 9.8]
    second = [1.0, 2.0, 1.5, 0.5, 1.2, 2.2, 0.8, 1.1]
    mean_diff, p_value = paired_permutation_test(first, second)
    assert mean_diff > 8
    # Exact test over 2^8 sign flips: only the 2 all-same-sign flips
    # reach the observed statistic.
    assert p_value == pytest.approx(2 / 256)


def test_exact_p_value_single_pair():
    # One pair: both sign flips give the same |mean|, p = 1.
    _, p_value = paired_permutation_test([3.0], [1.0])
    assert p_value == 1.0


def test_monte_carlo_branch_for_large_samples():
    rng = np.random.default_rng(0)
    first = rng.normal(1.0, 0.1, size=40)
    second = rng.normal(0.0, 0.1, size=40)
    mean_diff, p_value = paired_permutation_test(first, second, seed=1)
    assert mean_diff == pytest.approx(1.0, abs=0.1)
    assert p_value < 0.01


def test_monte_carlo_null_is_calibrated():
    rng = np.random.default_rng(3)
    first = rng.normal(size=40)
    second = rng.normal(size=40)
    _, p_value = paired_permutation_test(first, second, seed=1)
    assert p_value > 0.01  # no real effect -> rarely significant


def test_validation():
    with pytest.raises(ConfigurationError):
        paired_permutation_test([1.0], [1.0, 2.0])
    with pytest.raises(ConfigurationError):
        paired_permutation_test([], [])
    with pytest.raises(ConfigurationError):
        dominance_count([1.0], [])


def test_dominance_count():
    assert dominance_count([3, 2, 1], [1, 2, 0]) == (2, 3)
    assert dominance_count([1, 1], [2, 2]) == (0, 2)


def test_end_to_end_ucb_vs_ts_significance():
    """The headline comparison with an actual p-value."""
    from repro.analysis import replicate_policies
    from repro.datasets.synthetic import SyntheticConfig

    config = SyntheticConfig(
        num_events=20,
        horizon=600,
        dim=5,
        capacity_mean=20.0,
        capacity_std=8.0,
    )
    result = replicate_policies(
        config, seeds=[0, 1, 2, 3, 4], policy_names=("UCB", "TS")
    )
    mean_diff, p_value = paired_permutation_test(
        result.accept_ratios["UCB"], result.accept_ratios["TS"]
    )
    assert mean_diff > 0.1
    # Exact test with 5 pairs: the strongest attainable p is 2/32.
    assert p_value == pytest.approx(2 / 32)
