"""The reproduction-report generator."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.report_gen import Finding, grade_results, render_report


def write_csv(directory, experiment, filename, header, rows):
    exp_dir = directory / experiment
    exp_dir.mkdir(parents=True, exist_ok=True)
    lines = [",".join(header)] + [",".join(str(v) for v in row) for row in rows]
    (exp_dir / filename).write_text("\n".join(lines) + "\n")


@pytest.fixture
def fake_results(tmp_path):
    """A minimal results directory that reproduces every finding."""
    write_csv(
        tmp_path, "fig1", "curve_total_rewards.csv",
        ["t", "UCB", "TS", "eGreedy", "Exploit", "Random", "OPT"],
        [[100, 50, 10, 45, 48, 8, 55], [200, 900, 300, 880, 890, 250, 910]],
    )
    write_csv(
        tmp_path, "fig1", "curve_total_regrets.csv",
        ["t", "UCB", "TS"], [[100, 80, 500], [200, 10, 400]],
    )
    write_csv(
        tmp_path, "fig2", "curve_kendall_tau.csv",
        ["t", "UCB", "TS", "Random"], [[100, 0.5, 0.1, 0.0], [200, 0.95, 0.05, 0.01]],
    )
    write_csv(
        tmp_path, "fig4", "curve_accept_ratio.csv",
        ["t", "TS d=1", "OPT d=1", "TS d=15", "OPT d=15"],
        [[100, 0.9, 0.95, 0.1, 0.5]],
    )
    write_csv(
        tmp_path, "tab7", "table_accept_ratios__c_u___5.csv",
        ["Algorithm", "u1", "u2"],
        [["UCB", 0.9, 0.95], ["TS", 0.3, 0.2], ["Exploit", 0.0, 0.9]],
    )
    write_csv(
        tmp_path, "tab5", "table_avg_time__sec_round.csv",
        ["Algorithm", "|V|=100", "|V|=1000"],
        [["UCB", 0.001, 0.002], ["Random", 0.0001, 0.0002],
         ["Exploit", 0.0002, 0.0004], ["TS", 0.0005, 0.0009],
         ["eGreedy", 0.0002, 0.0004]],
    )
    write_csv(
        tmp_path, "mab", "curve_cumulative_regret.csv",
        ["t", "TS-Beta", "UCB1"], [[100, 5, 20], [200, 8, 60]],
    )
    return tmp_path


def test_all_findings_reproduced_on_good_results(fake_results):
    findings = grade_results(fake_results)
    assert len(findings) == 7
    assert all(f.holds for f in findings)


def test_missing_experiment_is_not_evaluable(fake_results):
    import shutil

    shutil.rmtree(fake_results / "mab")
    findings = grade_results(fake_results)
    mab = [f for f in findings if f.title.startswith("mab")][0]
    assert mab.holds is None
    assert "not evaluable" in mab.evidence


def test_violated_finding_is_flagged(fake_results):
    # Make TS beat UCB under FASEA — the opposite of the paper.
    write_csv(
        fake_results, "fig1", "curve_total_rewards.csv",
        ["t", "UCB", "TS", "eGreedy", "Exploit", "Random", "OPT"],
        [[100, 10, 900, 45, 48, 8, 910]],
    )
    findings = grade_results(fake_results)
    fig1 = findings[0]
    assert fig1.holds is False
    assert fig1.verdict == "NOT REPRODUCED"


def test_render_report_markdown(fake_results):
    text = render_report(grade_results(fake_results), fake_results)
    assert text.startswith("# Reproduction report")
    assert "7/7 evaluable findings reproduced" in text
    assert "✅" in text


def test_missing_directory_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        grade_results(tmp_path / "nope")


def test_verdict_strings():
    assert Finding("t", True, "e").verdict == "REPRODUCED"
    assert Finding("t", False, "e").verdict == "NOT REPRODUCED"
    assert Finding("t", None, "e").verdict == "n/a"


def test_committed_results_grade_clean():
    """The repository's own results directory reproduces everything."""
    from pathlib import Path

    results = Path(__file__).resolve().parent.parent / "results"
    if not results.is_dir():
        pytest.skip("results directory not generated")
    findings = grade_results(results)
    assert all(f.holds is not False for f in findings)