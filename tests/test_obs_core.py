"""Unit tests for the ``repro.obs`` core (DESIGN.md §5.8).

Covers the metric primitives (counter/gauge/histogram/timer/series),
the registry's get-or-create + type-conflict semantics, hierarchical
spans, snapshot merge determinism, the picklable plain-data boundary,
and the disabled-by-default ``NULL_OBS`` contract.
"""

import pickle

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.core import (
    DEFAULT_BUCKETS,
    NULL_OBS,
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    MetricsSnapshot,
    NullInstrumentation,
    Series,
    Timer,
    current,
    set_current,
    use,
)


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_decrease():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ConfigurationError, match="cannot decrease"):
        counter.inc(-1)


def test_gauge_set_and_signed_inc():
    gauge = Gauge("g")
    gauge.set(3)
    gauge.inc(-1.5)
    assert gauge.value == 1.5


def test_histogram_requires_sorted_nonempty_buckets():
    with pytest.raises(ConfigurationError, match="at least one bucket"):
        Histogram("h", buckets=())
    with pytest.raises(ConfigurationError, match="sorted"):
        Histogram("h", buckets=(2.0, 1.0))


def test_histogram_buckets_observations_inclusively():
    hist = Histogram("h", buckets=(1.0, 2.0))
    for value in (0.5, 1.0, 1.5, 99.0):
        hist.observe(value)
    assert hist.counts == [2, 1, 1]  # (<=1, <=2, +Inf)
    assert hist.count == 4
    assert hist.sum == pytest.approx(102.0)
    assert hist.mean == pytest.approx(25.5)
    assert (hist.min, hist.max) == (0.5, 99.0)


def test_histogram_merge_adds_bucketwise_and_tracks_extremes():
    left = Histogram("h", buckets=(1.0, 2.0))
    right = Histogram("h", buckets=(1.0, 2.0))
    left.observe(0.5)
    right.observe(5.0)
    left.merge(right)
    assert left.counts == [1, 0, 1]
    assert left.count == 2
    assert (left.min, left.max) == (0.5, 5.0)


def test_histogram_merge_rejects_different_layouts():
    left = Histogram("h", buckets=(1.0,))
    right = Histogram("h", buckets=(2.0,))
    with pytest.raises(ConfigurationError, match="bucket layout differs"):
        left.merge(right)


def test_timer_context_and_observe_share_one_histogram():
    timer = Timer("t")
    with timer.time():
        pass
    timer.observe(0.25)
    assert timer.count == 2
    assert timer.total >= 0.25
    assert timer.mean == pytest.approx(timer.total / 2)


def test_series_appends_in_order_and_exposes_last():
    series = Series("s")
    assert len(series) == 0 and series.last is None
    series.append(1, 0.5)
    series.append(3, 0.25)
    assert series.points == [(1, 0.5), (3, 0.25)]
    assert series.last == (3, 0.25)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_accessors_get_or_create_the_same_object():
    obs = Instrumentation()
    assert obs.counter("x") is obs.counter("x")
    assert obs.series("y") is obs.series("y")


def test_name_reuse_across_types_raises():
    obs = Instrumentation()
    obs.counter("x")
    with pytest.raises(ConfigurationError, match="already registered"):
        obs.gauge("x")


def test_snapshot_partitions_metrics_by_type():
    obs = Instrumentation()
    obs.counter("c").inc(2)
    obs.gauge("g").set(1.5)
    obs.histogram("h").observe(0.2)
    obs.timer("t").observe(0.1)
    obs.series("s").append(1, 9.0)
    snap = obs.snapshot()
    assert snap.counters == {"c": 2}
    assert snap.gauges == {"g": 1.5}
    assert set(snap.histograms) == {"h", "t"}
    assert snap.histograms["t"]["unit"] == "seconds"
    assert "unit" not in snap.histograms["h"]
    assert snap.series == {"s": [[1, 9.0]]}


def test_snapshot_roundtrips_through_dict_and_pickle():
    obs = Instrumentation()
    obs.counter("c").inc()
    obs.timer("t").observe(0.5)
    obs.series("s").append(2, 3.0)
    snap = obs.snapshot()
    payload = snap.to_dict()
    assert payload["version"] == 1
    rebuilt = MetricsSnapshot.from_dict(payload)
    assert rebuilt.to_dict() == payload
    assert pickle.loads(pickle.dumps(snap)).to_dict() == payload


def test_snapshot_merge_semantics():
    left = Instrumentation()
    right = Instrumentation()
    for obs, gauge_value in ((left, 1.0), (right, 2.0)):
        obs.counter("c").inc(3)
        obs.gauge("g").set(gauge_value)
        obs.histogram("h", buckets=(1.0,)).observe(0.5)
        obs.series("s").append(1, 7.0)
    merged = left.snapshot()
    merged.merge(right.snapshot())
    assert merged.counters["c"] == 6  # counters add
    assert merged.gauges["g"] == 2.0  # last write wins
    assert merged.histograms["h"]["count"] == 2  # bucket-wise add
    assert merged.series["s"] == [[1, 7.0], [1, 7.0]]  # concatenation


def test_snapshot_merge_rejects_mismatched_histogram_layouts():
    left = Instrumentation()
    right = Instrumentation()
    left.histogram("h", buckets=(1.0,)).observe(0.5)
    right.histogram("h", buckets=(2.0,)).observe(0.5)
    merged = left.snapshot()
    with pytest.raises(ConfigurationError, match="bucket layouts"):
        merged.merge(right.snapshot())


def test_merge_snapshot_into_live_registry_is_order_deterministic():
    def worker(tag):
        obs = Instrumentation()
        obs.counter("calls").inc()
        obs.timer("t").observe(0.125)
        obs.series("s").append(1, float(tag))
        return obs.snapshot()

    snapshots = [worker(tag) for tag in (10, 20)]
    parent_a = Instrumentation()
    parent_b = Instrumentation()
    for snapshot in snapshots:
        parent_a.merge_snapshot(snapshot)
    for snapshot in snapshots:
        parent_b.merge_snapshot(snapshot)
    assert parent_a.snapshot().to_dict() == parent_b.snapshot().to_dict()
    assert parent_a.counter("calls").value == 2
    assert parent_a.timer("t").count == 2
    assert parent_a.series("s").points == [(1, 10.0), (1, 20.0)]


# ----------------------------------------------------------------------
# Spans and events
# ----------------------------------------------------------------------
def test_spans_record_hierarchy_and_attrs():
    obs = Instrumentation()
    with obs.span("outer", run=1):
        with obs.span("inner"):
            pass
    inner, outer = obs.trace_records()  # inner closes first
    assert (inner["name"], outer["name"]) == ("inner", "outer")
    assert outer["parent_id"] is None
    assert inner["parent_id"] == outer["span_id"]
    assert outer["attrs"] == {"run": 1}
    assert inner["duration_ns"] >= 0


def test_events_attach_to_the_open_span():
    obs = Instrumentation()
    obs.event("orphan")
    with obs.span("outer"):
        obs.event("child", detail=3)
    orphan, child, outer = obs.trace_records()
    assert "span_id" not in orphan
    assert child["span_id"] == outer["span_id"]
    assert child["fields"] == {"detail": 3}


def test_span_records_the_exception_type():
    obs = Instrumentation()
    with pytest.raises(ValueError):
        with obs.span("doomed"):
            raise ValueError("boom")
    (record,) = obs.trace_records()
    assert record["error"] == "ValueError"


def test_merge_trace_appends_copies():
    obs = Instrumentation()
    record = {"kind": "event", "name": "remote"}
    obs.merge_trace([record])
    merged = obs.trace_records()[0]
    assert merged == record and merged is not record


# ----------------------------------------------------------------------
# Null instrumentation + process-local registry
# ----------------------------------------------------------------------
def test_null_obs_is_disabled_and_inert():
    assert NULL_OBS.enabled is False
    assert Instrumentation.enabled is True
    NULL_OBS.counter("c").inc()
    NULL_OBS.gauge("g").set(5)
    NULL_OBS.series("s").append(1, 2)
    with NULL_OBS.timer("t").time():
        pass
    with NULL_OBS.span("ignored", attr=1):
        NULL_OBS.event("ignored")
    assert NULL_OBS.trace_records() == []
    assert NULL_OBS.snapshot().to_dict() == MetricsSnapshot().to_dict()


def test_null_accessors_share_one_object():
    assert NULL_OBS.counter("a") is NULL_OBS.gauge("b") is NULL_OBS.series("c")


def test_current_defaults_to_the_null_singleton():
    assert current() is NULL_OBS


def test_use_installs_and_restores_even_on_error():
    obs = Instrumentation()
    with use(obs):
        assert current() is obs
    assert current() is NULL_OBS
    with pytest.raises(RuntimeError):
        with use(obs):
            raise RuntimeError("boom")
    assert current() is NULL_OBS


def test_set_current_none_restores_the_default():
    obs = Instrumentation()
    previous = set_current(obs)
    try:
        assert previous is NULL_OBS
        assert current() is obs
    finally:
        set_current(None)
    assert current() is NULL_OBS


def test_null_instrumentation_instances_report_disabled():
    assert NullInstrumentation().enabled is False
    assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))
