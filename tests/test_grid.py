"""Parameter-grid sweeps."""

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.exceptions import ConfigurationError
from repro.experiments.grid import best_policy_per_cell, expand_grid, sweep


def test_expand_grid_cartesian_product():
    grid = expand_grid({"dim": [1, 5], "conflict_ratio": [0.0, 1.0]})
    assert len(grid) == 4
    assert {"dim": 1, "conflict_ratio": 1.0} in grid


def test_expand_grid_single_axis_preserves_order():
    grid = expand_grid({"dim": [15, 1, 5]})
    assert [g["dim"] for g in grid] == [15, 1, 5]


def test_expand_grid_validation():
    with pytest.raises(ConfigurationError):
        expand_grid({})
    with pytest.raises(ConfigurationError):
        expand_grid({"dim": []})


@pytest.fixture(scope="module")
def small_sweep():
    base = SyntheticConfig(
        num_events=15,
        horizon=300,
        dim=3,
        # Ample capacities: no exhaustion, so regret gaps stay visible
        # in every cell (with tiny capacities all policies end tied).
        capacity_mean=500.0,
        capacity_std=10.0,
        seed=0,
    )
    return sweep(
        base,
        axes={"conflict_ratio": [0.0, 1.0]},
        policy_names=("UCB", "Random"),
    )


def test_sweep_covers_every_cell(small_sweep):
    assert len(small_sweep) == 2
    ratios = {dict(cell.overrides)["conflict_ratio"] for cell in small_sweep}
    assert ratios == {0.0, 1.0}


def test_sweep_records_all_policies(small_sweep):
    for cell in small_sweep:
        assert set(cell.accept_ratios) == {"OPT", "UCB", "Random"}
        assert set(cell.total_regrets) == {"UCB", "Random"}


def test_sweep_ucb_beats_random_everywhere(small_sweep):
    for cell in small_sweep:
        assert cell.total_regrets["UCB"] < cell.total_regrets["Random"]


def test_best_policy_per_cell(small_sweep):
    best = best_policy_per_cell(small_sweep)
    assert set(best.values()) == {"UCB"}
    assert len(best) == 2


def test_override_dict_round_trip(small_sweep):
    cell = small_sweep[0]
    assert cell.override_dict() == dict(cell.overrides)
