"""The Remark 1 / Remark 2 extensions."""

import numpy as np
import pytest

from repro.bandits import RandomPolicy, UcbPolicy
from repro.bandits.base import RoundView
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.users import User
from repro.exceptions import ConfigurationError
from repro.extensions import (
    DynamicEventSchedule,
    PerUserPolicyPool,
    run_dynamic_policy,
)


def make_view(user_id, contexts):
    return RoundView(
        time_step=1,
        user=User(user_id=user_id, capacity=1),
        contexts=contexts,
        remaining_capacities=np.ones(contexts.shape[0]),
        conflicts=ConflictGraph(contexts.shape[0]),
    )


# ----------------------------------------------------------------------
# Remark 1: per-user models
# ----------------------------------------------------------------------
def test_pool_creates_one_policy_per_user():
    pool = PerUserPolicyPool(lambda user_id: UcbPolicy(dim=2))
    contexts = np.array([[1.0, 0.0], [0.0, 1.0]])
    pool.select(make_view(0, contexts))
    pool.select(make_view(1, contexts))
    pool.select(make_view(0, contexts))
    assert pool.num_users_seen == 2
    assert pool.policy_for(0) is not pool.policy_for(1)


def test_pool_routes_observations_to_the_right_user():
    pool = PerUserPolicyPool(lambda user_id: UcbPolicy(dim=2))
    contexts = np.array([[1.0, 0.0], [0.0, 1.0]])
    view0 = make_view(0, contexts)
    view1 = make_view(1, contexts)
    # User 0 loves event 0; user 1 loves event 1.
    for _ in range(30):
        pool.observe(view0, [0], [1.0])
        pool.observe(view0, [1], [0.0])
        pool.observe(view1, [0], [0.0])
        pool.observe(view1, [1], [1.0])
    scores0 = pool.policy_for(0).predicted_scores(contexts)
    scores1 = pool.policy_for(1).predicted_scores(contexts)
    assert scores0[0] > scores0[1]
    assert scores1[1] > scores1[0]


def test_pool_reset_drops_all_users():
    pool = PerUserPolicyPool(lambda user_id: UcbPolicy(dim=2))
    pool.select(make_view(0, np.eye(2)))
    pool.reset()
    assert pool.num_users_seen == 0


def test_pool_predicted_scores_before_any_user_is_zero():
    pool = PerUserPolicyPool(lambda user_id: UcbPolicy(dim=2))
    assert np.allclose(pool.predicted_scores(np.eye(2)), 0.0)


# ----------------------------------------------------------------------
# Remark 2: dynamic event sets
# ----------------------------------------------------------------------
def test_round_robin_masks_partition_events():
    schedule = DynamicEventSchedule.round_robin(
        num_events=10, num_phases=3, phase_length=5
    )
    union = np.zeros(10, dtype=bool)
    for mask in schedule.masks:
        union |= mask
    assert union.all()
    assert schedule.active_mask(1).tolist() == schedule.masks[0].tolist()
    assert schedule.active_mask(6).tolist() == schedule.masks[1].tolist()
    assert schedule.active_mask(16).tolist() == schedule.masks[0].tolist()


def test_schedule_validation():
    with pytest.raises(ConfigurationError):
        DynamicEventSchedule(masks=(), phase_length=1)
    with pytest.raises(ConfigurationError):
        DynamicEventSchedule(
            masks=(np.zeros(3, dtype=bool),), phase_length=1
        )
    with pytest.raises(ConfigurationError):
        DynamicEventSchedule.round_robin(num_events=3, num_phases=4, phase_length=1)
    schedule = DynamicEventSchedule.round_robin(4, 2, 2)
    with pytest.raises(ConfigurationError):
        schedule.active_mask(0)


def test_dynamic_runner_only_arranges_active_events(small_world):
    schedule = DynamicEventSchedule.round_robin(
        num_events=small_world.config.num_events, num_phases=2, phase_length=3
    )

    class Probe(RandomPolicy):
        def __init__(self):
            super().__init__(seed=0)
            self.violations = 0
            self.step = 0

        def select(self, view):
            self.step += 1
            arrangement = super().select(view)
            mask = schedule.active_mask(self.step)
            self.violations += sum(not mask[v] for v in arrangement)
            return arrangement

    probe = Probe()
    history = run_dynamic_policy(probe, small_world, schedule, horizon=30)
    assert probe.violations == 0
    assert history.horizon == 30


def test_dynamic_runner_validates_event_counts(small_world):
    schedule = DynamicEventSchedule.round_robin(5, 2, 2)
    with pytest.raises(ConfigurationError):
        run_dynamic_policy(RandomPolicy(seed=0), small_world, schedule, horizon=5)


def test_dynamic_ucb_still_learns(small_world):
    schedule = DynamicEventSchedule.round_robin(
        num_events=small_world.config.num_events, num_phases=2, phase_length=10
    )
    ucb = run_dynamic_policy(
        UcbPolicy(dim=4), small_world, schedule, horizon=150, run_seed=0
    )
    random_history = run_dynamic_policy(
        RandomPolicy(seed=0), small_world, schedule, horizon=150, run_seed=0
    )
    assert ucb.total_reward > random_history.total_reward
