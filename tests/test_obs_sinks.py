"""Tests for the ``repro.obs`` sinks: JSONL traces, exporters, console.

The sinks are the plain-data boundary of the telemetry bus: traces
round-trip through JSONL unchanged, snapshots round-trip through the
``metrics.json`` schema and render to Prometheus text exposition, and
every human-facing CLI line flows through :class:`Console` with the
documented stream/quiet/colour routing.
"""

import io
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.console import Console, color_allowed
from repro.obs.core import Instrumentation
from repro.obs.export import (
    prometheus_name,
    snapshot_from_json,
    snapshot_to_json,
    to_prometheus_text,
)
from repro.obs.trace import read_trace_jsonl, span_tree_lines, write_trace_jsonl


@pytest.fixture()
def sample_obs():
    obs = Instrumentation()
    with obs.span("outer", run=7):
        obs.counter("env.rounds").inc(3)
        obs.event("drained", event_id=2)
        with obs.span("inner"):
            obs.timer("policy.UCB.select_seconds").observe(0.01)
    obs.gauge("parallel.workers").set(2)
    obs.series("policy.UCB.reward").append(1, 4.0)
    obs.series("policy.UCB.reward").append(2, 5.0)
    return obs


# ----------------------------------------------------------------------
# JSONL trace sink
# ----------------------------------------------------------------------
def test_trace_jsonl_roundtrip(sample_obs, tmp_path):
    records = sample_obs.trace_records()
    path = write_trace_jsonl(records, tmp_path / "nested" / "trace.jsonl")
    assert path.is_file()
    assert read_trace_jsonl(path) == records


def test_trace_reader_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind": "event", "name": "a"}\n\n')
    assert read_trace_jsonl(path) == [{"kind": "event", "name": "a"}]


def test_trace_reader_rejects_garbage(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text("not json\n")
    with pytest.raises(ConfigurationError, match="invalid trace line"):
        read_trace_jsonl(path)
    path.write_text("[1, 2]\n")
    with pytest.raises(ConfigurationError, match="not an object"):
        read_trace_jsonl(path)


def test_span_tree_indents_children_and_events(sample_obs):
    lines = span_tree_lines(sample_obs.trace_records())
    outer = next(line for line in lines if "outer" in line)
    inner = next(line for line in lines if "inner" in line)
    event = next(line for line in lines if "drained" in line)
    assert not outer.startswith(" ")
    assert inner.startswith("  [span]")
    assert event.startswith("  [event]") and "event_id=2" in event
    assert "run=7" in outer and "ms" in outer


def test_span_tree_can_exclude_events_and_truncate(sample_obs):
    records = sample_obs.trace_records()
    no_events = span_tree_lines(records, include_events=False)
    assert all("[event]" not in line for line in no_events)
    truncated = span_tree_lines(records, limit=1)
    assert truncated[-1] == "... truncated at 1 lines ..."
    assert len(truncated) == 2


# ----------------------------------------------------------------------
# JSON + Prometheus exporters
# ----------------------------------------------------------------------
def test_snapshot_json_roundtrip(sample_obs):
    snapshot = sample_obs.snapshot()
    text = snapshot_to_json(snapshot)
    assert text.endswith("\n")
    assert json.loads(text)["version"] == 1
    assert snapshot_from_json(text).to_dict() == snapshot.to_dict()


def test_prometheus_name_sanitises_to_charset():
    assert prometheus_name("policy.UCB.reward") == "fasea_policy_UCB_reward"
    assert prometheus_name("9lives") == "fasea__9lives"


def test_prometheus_text_renders_every_metric_family(sample_obs):
    text = to_prometheus_text(sample_obs.snapshot())
    assert "# TYPE fasea_env_rounds counter" in text
    assert "fasea_env_rounds 3" in text
    assert "# TYPE fasea_parallel_workers gauge" in text
    assert "fasea_parallel_workers 2" in text
    assert "# TYPE fasea_policy_UCB_select_seconds histogram" in text
    assert 'fasea_policy_UCB_select_seconds_bucket{le="+Inf"} 1' in text
    assert "fasea_policy_UCB_select_seconds_count 1" in text
    assert "# TYPE fasea_policy_UCB_reward_last gauge" in text
    assert "fasea_policy_UCB_reward_last 5" in text


def test_prometheus_buckets_are_cumulative():
    obs = Instrumentation()
    hist = obs.histogram("h", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 1.6):
        hist.observe(value)
    text = to_prometheus_text(obs.snapshot())
    assert 'fasea_h_bucket{le="1"} 1' in text
    assert 'fasea_h_bucket{le="2"} 3' in text
    assert 'fasea_h_bucket{le="+Inf"} 3' in text


def test_prometheus_text_of_empty_snapshot_is_empty():
    assert to_prometheus_text(Instrumentation().snapshot()) == ""


# ----------------------------------------------------------------------
# Console
# ----------------------------------------------------------------------
def _console(quiet=False, color=False):
    out, err = io.StringIO(), io.StringIO()
    return Console(quiet=quiet, color=color, out=out, err=err), out, err


def test_console_routes_channels_to_the_right_streams():
    console, out, err = _console()
    console.result("table")
    console.data("payload")
    console.info("progress")
    console.warn("careful")
    console.error("broken")
    assert out.getvalue() == "table\npayload\n"
    assert err.getvalue() == "progress\ncareful\nbroken\n"


def test_quiet_silences_chrome_but_not_data_or_errors():
    console, out, err = _console(quiet=True)
    console.result("table")
    console.info("progress")
    console.data("payload")
    console.warn("careful")
    console.error("broken")
    assert out.getvalue() == "payload\n"
    assert err.getvalue() == "careful\nbroken\n"


def test_style_wraps_only_when_colour_is_enabled():
    coloured, _, _ = _console(color=True)
    plain, _, _ = _console(color=False)
    assert coloured.style("x", "red") == "\x1b[31mx\x1b[0m"
    assert plain.style("x", "red") == "x"
    assert coloured.style("x", "no-such-style") == "x"


def test_color_allowed_honours_no_color_and_dumb_term(monkeypatch):
    stream = io.StringIO()  # not a tty
    monkeypatch.delenv("NO_COLOR", raising=False)
    monkeypatch.setenv("TERM", "xterm")
    assert color_allowed(stream) is False  # non-tty
    monkeypatch.setenv("NO_COLOR", "1")
    assert color_allowed(stream) is False
    monkeypatch.delenv("NO_COLOR")
    monkeypatch.setenv("TERM", "dumb")
    assert color_allowed(stream) is False
