"""Tests for the ``repro.obs`` sinks: JSONL traces, exporters, console.

The sinks are the plain-data boundary of the telemetry bus: traces
round-trip through JSONL unchanged, snapshots round-trip through the
``metrics.json`` schema and render to Prometheus text exposition, and
every human-facing CLI line flows through :class:`Console` with the
documented stream/quiet/colour routing.
"""

import io
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.console import Console, color_allowed
from repro.obs.core import Instrumentation
from repro.obs.export import (
    prometheus_name,
    snapshot_from_json,
    snapshot_to_json,
    to_prometheus_text,
)
from repro.obs.trace import read_trace_jsonl, span_tree_lines, write_trace_jsonl


@pytest.fixture()
def sample_obs():
    obs = Instrumentation()
    with obs.span("outer", run=7):
        obs.counter("env.rounds").inc(3)
        obs.event("drained", event_id=2)
        with obs.span("inner"):
            obs.timer("policy.UCB.select_seconds").observe(0.01)
    obs.gauge("parallel.workers").set(2)
    obs.series("policy.UCB.reward").append(1, 4.0)
    obs.series("policy.UCB.reward").append(2, 5.0)
    return obs


# ----------------------------------------------------------------------
# JSONL trace sink
# ----------------------------------------------------------------------
def test_trace_jsonl_roundtrip(sample_obs, tmp_path):
    records = sample_obs.trace_records()
    path = write_trace_jsonl(records, tmp_path / "nested" / "trace.jsonl")
    assert path.is_file()
    assert read_trace_jsonl(path) == records


def test_trace_reader_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind": "event", "name": "a"}\n\n')
    assert read_trace_jsonl(path) == [{"kind": "event", "name": "a"}]


def test_trace_reader_rejects_garbage(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text("not json\n")
    with pytest.raises(ConfigurationError, match="invalid trace line"):
        read_trace_jsonl(path)
    path.write_text("[1, 2]\n")
    with pytest.raises(ConfigurationError, match="not an object"):
        read_trace_jsonl(path)


def test_span_tree_indents_children_and_events(sample_obs):
    lines = span_tree_lines(sample_obs.trace_records())
    outer = next(line for line in lines if "outer" in line)
    inner = next(line for line in lines if "inner" in line)
    event = next(line for line in lines if "drained" in line)
    assert not outer.startswith(" ")
    assert inner.startswith("  [span]")
    assert event.startswith("  [event]") and "event_id=2" in event
    assert "run=7" in outer and "ms" in outer


def test_span_tree_can_exclude_events_and_truncate(sample_obs):
    records = sample_obs.trace_records()
    no_events = span_tree_lines(records, include_events=False)
    assert all("[event]" not in line for line in no_events)
    truncated = span_tree_lines(records, limit=1)
    assert truncated[-1] == "... truncated at 1 lines ..."
    assert len(truncated) == 2


# ----------------------------------------------------------------------
# JSON + Prometheus exporters
# ----------------------------------------------------------------------
def test_snapshot_json_roundtrip(sample_obs):
    snapshot = sample_obs.snapshot()
    text = snapshot_to_json(snapshot)
    assert text.endswith("\n")
    assert json.loads(text)["version"] == 1
    assert snapshot_from_json(text).to_dict() == snapshot.to_dict()


def test_prometheus_name_sanitises_to_charset():
    assert prometheus_name("policy.UCB.reward") == "fasea_policy_UCB_reward"
    assert prometheus_name("9lives") == "fasea__9lives"


def test_prometheus_text_renders_every_metric_family(sample_obs):
    text = to_prometheus_text(sample_obs.snapshot())
    assert "# TYPE fasea_env_rounds counter" in text
    assert "fasea_env_rounds 3" in text
    assert "# TYPE fasea_parallel_workers gauge" in text
    assert "fasea_parallel_workers 2" in text
    assert "# TYPE fasea_policy_UCB_select_seconds histogram" in text
    assert 'fasea_policy_UCB_select_seconds_bucket{le="+Inf"} 1' in text
    assert "fasea_policy_UCB_select_seconds_count 1" in text
    assert "# TYPE fasea_policy_UCB_reward_last gauge" in text
    assert "fasea_policy_UCB_reward_last 5" in text


def test_prometheus_buckets_are_cumulative():
    obs = Instrumentation()
    hist = obs.histogram("h", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 1.6):
        hist.observe(value)
    text = to_prometheus_text(obs.snapshot())
    assert 'fasea_h_bucket{le="1"} 1' in text
    assert 'fasea_h_bucket{le="2"} 3' in text
    assert 'fasea_h_bucket{le="+Inf"} 3' in text


def test_prometheus_text_of_empty_snapshot_is_empty():
    assert to_prometheus_text(Instrumentation().snapshot()) == ""


def test_prometheus_name_escaping_edge_cases():
    # Every character outside [a-zA-Z0-9_:] collapses to "_"; colons
    # (the recording-rule namespace char) survive.
    assert prometheus_name("a b/c-d") == "fasea_a_b_c_d"
    assert prometheus_name("ns:rule") == "fasea_ns:rule"
    assert prometheus_name("θ.drift") == "fasea___drift"
    assert prometheus_name("policy.TS(ν=0.1).reward") == (
        "fasea_policy_TS___0_1__reward"
    )
    # Sanitised names never start with a digit (after the namespace the
    # raw name could; the exporter guards it anyway).
    assert not prometheus_name("0").removeprefix("fasea_")[0].isdigit()


def test_prometheus_bucket_labels_format_bounds_compactly():
    obs = Instrumentation()
    hist = obs.histogram("latency", buckets=(0.001, 0.25, 10.0))
    hist.observe(0.0005)
    text = to_prometheus_text(obs.snapshot())
    assert 'fasea_latency_bucket{le="0.001"} 1' in text
    assert 'fasea_latency_bucket{le="0.25"} 1' in text
    assert 'fasea_latency_bucket{le="10"} 1' in text


def test_prometheus_skips_empty_series_but_keeps_zero_counters():
    obs = Instrumentation()
    obs.counter("touched.never.incremented")
    obs.series("empty.series")
    text = to_prometheus_text(obs.snapshot())
    assert "fasea_touched_never_incremented 0" in text
    assert "empty_series" not in text


# ----------------------------------------------------------------------
# Snapshot merge algebra
# ----------------------------------------------------------------------
def _random_snapshot(seed):
    """A deterministic pseudo-random snapshot exercising every family."""
    import numpy as np

    rng = np.random.default_rng(seed)
    obs = Instrumentation()
    for i in range(int(rng.integers(1, 4))):
        obs.counter(f"c{int(rng.integers(0, 3))}").inc(int(rng.integers(1, 9)))
    obs.gauge(f"g{seed % 2}").set(float(rng.normal()))
    hist = obs.histogram("h", buckets=(0.1, 1.0, 10.0))
    for value in rng.uniform(0.0, 12.0, size=int(rng.integers(1, 6))):
        hist.observe(float(value))
    timer = obs.timer("t.select_seconds")
    for value in rng.uniform(0.0, 0.2, size=int(rng.integers(1, 4))):
        timer.observe(float(value))
    series = obs.series("s.reward")
    for step in range(int(rng.integers(1, 5))):
        series.append(step, float(rng.normal()))
    return obs.snapshot()


def _merged(left, right):
    merged = snapshot_from_json(snapshot_to_json(left))  # deep copy
    merged.merge(right)
    return merged


def _assert_snapshots_equivalent(left, right):
    """Exact equality everywhere except histogram ``sum``.

    Bucket counts, counters, gauges, series and min/max are integers or
    single writes and merge exactly; the float ``sum`` accumulates in
    merge order, so associativity holds only up to the last ulp there.
    """
    import math

    left_dict, right_dict = left.to_dict(), right.to_dict()
    for section in ("counters", "gauges", "series", "meta"):
        assert left_dict[section] == right_dict[section]
    assert set(left_dict["histograms"]) == set(right_dict["histograms"])
    for name, payload in left_dict["histograms"].items():
        other = right_dict["histograms"][name]
        for key in payload:
            if key == "sum":
                assert math.isclose(
                    payload["sum"], other["sum"], rel_tol=1e-12, abs_tol=0.0
                )
            else:
                assert payload[key] == other[key], (name, key)


@pytest.mark.parametrize("seed", [0, 1, 7, 23, 99])
def test_snapshot_merge_is_associative(seed):
    # merge(a, merge(b, c)) == merge(merge(a, b), c) for every family:
    # counters add, histograms/timers bucket-add, series concatenate in
    # order, gauges take the rightmost write.  This is the property that
    # makes submission-order worker merging independent of --jobs.
    a, b, c = (_random_snapshot(seed * 3 + k) for k in range(3))
    left = _merged(_merged(a, b), c)
    right = _merged(a, _merged(b, c))
    _assert_snapshots_equivalent(left, right)


def test_snapshot_merge_identity_and_histogram_bounds():
    snapshot = _random_snapshot(5)
    merged = _merged(snapshot, Instrumentation().snapshot())
    assert merged.to_dict() == snapshot.to_dict()
    doubled = _merged(snapshot, snapshot)
    for name, payload in doubled.histograms.items():
        base = snapshot.histograms[name]
        assert payload["count"] == 2 * base["count"]
        assert payload["min"] == base["min"]
        assert payload["max"] == base["max"]


# ----------------------------------------------------------------------
# Console
# ----------------------------------------------------------------------
def _console(quiet=False, color=False):
    out, err = io.StringIO(), io.StringIO()
    return Console(quiet=quiet, color=color, out=out, err=err), out, err


def test_console_routes_channels_to_the_right_streams():
    console, out, err = _console()
    console.result("table")
    console.data("payload")
    console.info("progress")
    console.warn("careful")
    console.error("broken")
    assert out.getvalue() == "table\npayload\n"
    assert err.getvalue() == "progress\ncareful\nbroken\n"


def test_quiet_silences_chrome_but_not_data_or_errors():
    console, out, err = _console(quiet=True)
    console.result("table")
    console.info("progress")
    console.data("payload")
    console.warn("careful")
    console.error("broken")
    assert out.getvalue() == "payload\n"
    assert err.getvalue() == "careful\nbroken\n"


def test_style_wraps_only_when_colour_is_enabled():
    coloured, _, _ = _console(color=True)
    plain, _, _ = _console(color=False)
    assert coloured.style("x", "red") == "\x1b[31mx\x1b[0m"
    assert plain.style("x", "red") == "x"
    assert coloured.style("x", "no-such-style") == "x"


def test_color_allowed_honours_no_color_and_dumb_term(monkeypatch):
    stream = io.StringIO()  # not a tty
    monkeypatch.delenv("NO_COLOR", raising=False)
    monkeypatch.setenv("TERM", "xterm")
    assert color_allowed(stream) is False  # non-tty
    monkeypatch.setenv("NO_COLOR", "1")
    assert color_allowed(stream) is False
    monkeypatch.delenv("NO_COLOR")
    monkeypatch.setenv("TERM", "dumb")
    assert color_allowed(stream) is False
