"""Bootstrap CIs, convergence detectors, multi-seed replication."""

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_mean_ci,
    detect_plateau,
    find_crossover,
    relative_improvement,
    replicate_policies,
)
from repro.datasets.synthetic import SyntheticConfig
from repro.exceptions import ConfigurationError
from repro.io import RunStore


# ----------------------------------------------------------------------
# bootstrap
# ----------------------------------------------------------------------
def test_ci_brackets_the_mean():
    mean, low, high = bootstrap_mean_ci([1.0, 2.0, 3.0, 4.0], seed=0)
    assert low <= mean <= high
    assert mean == pytest.approx(2.5)


def test_ci_single_value_degenerates():
    assert bootstrap_mean_ci([7.0]) == (7.0, 7.0, 7.0)


def test_ci_narrows_with_confidence():
    values = list(np.random.default_rng(0).normal(size=30))
    _, low90, high90 = bootstrap_mean_ci(values, confidence=0.90, seed=1)
    _, low99, high99 = bootstrap_mean_ci(values, confidence=0.99, seed=1)
    assert (high99 - low99) > (high90 - low90)


def test_ci_validation():
    with pytest.raises(ConfigurationError):
        bootstrap_mean_ci([])
    with pytest.raises(ConfigurationError):
        bootstrap_mean_ci([1.0], confidence=1.5)
    with pytest.raises(ConfigurationError):
        bootstrap_mean_ci([1.0], num_resamples=0)


# ----------------------------------------------------------------------
# convergence
# ----------------------------------------------------------------------
def test_plateau_found_where_growth_stops():
    curve = [1, 2, 3, 4, 5, 5, 5, 5, 5, 5]
    assert detect_plateau(curve, window=3) == 5


def test_plateau_none_for_steady_growth():
    assert detect_plateau(list(range(100)), window=5, tolerance=0.001) is None


def test_plateau_flat_zero_curve():
    assert detect_plateau([0, 0, 0], window=1) == 1


def test_plateau_validation():
    with pytest.raises(ConfigurationError):
        detect_plateau([1])
    with pytest.raises(ConfigurationError):
        detect_plateau([3, 2, 1])  # decreasing
    with pytest.raises(ConfigurationError):
        detect_plateau([1, 2], window=0)


def test_crossover_first_sustained_overtake():
    lead = [0, 0, 3, 1, 5, 6]
    trail = [2, 2, 2, 2, 2, 2]
    assert find_crossover(lead, trail, sustain=1) == 3
    assert find_crossover(lead, trail, sustain=2) == 5


def test_crossover_none_when_never_ahead():
    assert find_crossover([0, 0], [1, 1]) is None


def test_crossover_validation():
    with pytest.raises(ConfigurationError):
        find_crossover([1, 2], [1, 2, 3])
    with pytest.raises(ConfigurationError):
        find_crossover([1, 2], [1, 2], sustain=0)


def test_relative_improvement():
    assert relative_improvement(12.0, 10.0) == pytest.approx(0.2)
    assert relative_improvement(8.0, 10.0) == pytest.approx(-0.2)
    assert relative_improvement(1.0, 0.0) == float("inf")
    assert relative_improvement(0.0, 0.0) == 0.0


# ----------------------------------------------------------------------
# replication
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def replication():
    config = SyntheticConfig(
        num_events=20,
        horizon=500,
        dim=4,
        capacity_mean=10.0,
        capacity_std=4.0,
        seed=0,
    )
    return replicate_policies(config, seeds=[0, 1, 2], horizon=500)


def test_replication_covers_all_policies_and_seeds(replication):
    assert set(replication.accept_ratios) == {
        "OPT",
        "UCB",
        "TS",
        "eGreedy",
        "Exploit",
        "Random",
    }
    for values in replication.accept_ratios.values():
        assert len(values) == 3


def test_replication_cis_are_ordered(replication):
    for policy in replication.accept_ratios:
        mean, low, high = replication.accept_ratio_ci(policy)
        assert low <= mean <= high


def test_replication_ucb_dominates_random(replication):
    assert replication.dominates("UCB", "Random")


def test_replication_summary_rows_shape(replication):
    rows = replication.summary_rows()
    assert len(rows) == 6
    assert all(len(row) == 5 for row in rows)


def test_replication_validates_seeds():
    with pytest.raises(ConfigurationError):
        replicate_policies(SyntheticConfig.scaled_default(), seeds=[])


def test_replication_logs_into_a_store():
    config = SyntheticConfig(
        num_events=10, horizon=100, dim=3, capacity_mean=5.0, capacity_std=2.0
    )
    with RunStore() as store:
        replicate_policies(
            config,
            seeds=[0, 1],
            horizon=100,
            policy_names=("UCB",),
            store=store,
            experiment="test-exp",
        )
        # 2 seeds x (OPT + UCB) = 4 runs.
        assert store.count_runs() == 4
        stats = store.policy_statistics("test-exp")
        assert stats["UCB"]["count"] == 2
