"""Health report & live dashboard: followers, renderers, CLI verbs.

The consumption half of the learning-health monitor: the
:class:`JsonlFollower` never crashes on (or double-reads) a log whose
writer died mid-record, ``obs health`` renders the same document from
``health.json`` or an offline rebuild, and ``obs top`` follows a run
directory frame-by-frame with an injected clock.
"""

import io
import json
import shutil

import pytest

from repro.bandits import OptPolicy, UcbPolicy
from repro.cli import main as cli_main
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.io.runstore import persist_run_telemetry
from repro.obs.alerts import (
    ALERTS_FILENAME,
    DEFAULT_ALERT_RULES,
    AlertEngine,
    AlertLog,
    load_alerts,
)
from repro.obs.console import Console
from repro.obs.core import Instrumentation
from repro.obs.dashboard import (
    SPARK_BLOCKS,
    SPARK_WIDTH,
    TRACE_FILENAME,
    JsonlFollower,
    health_events_from_trace,
    health_table_rows,
    load_health_document,
    render_health_text,
    run_top,
    text_sparkline,
    top_lines,
    write_health_html,
)
from repro.obs.health import (
    CAPACITY_CLIFF_DETECTOR,
    CUSUM_DETECTOR,
    HealthMonitor,
    events_from_snapshot,
    health_event,
    persist_health,
)
from repro.obs.stream import StreamingSink
from repro.simulation.runner import run_policy


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """A full monitored run directory: metrics + trace + health + alerts."""
    directory = tmp_path_factory.mktemp("monitored")
    config = SyntheticConfig(
        num_events=6,
        horizon=60,
        dim=3,
        capacity_mean=2.0,
        capacity_std=1.0,
        conflict_ratio=0.0,
        seed=1,
    )
    world = build_world(config)
    obs = Instrumentation()
    obs.health_monitor = HealthMonitor()
    log = AlertLog(directory)
    obs.alert_engine = AlertEngine(DEFAULT_ALERT_RULES, log)
    try:
        with StreamingSink(
            directory, obs, flush_every_rounds=1, flush_every_seconds=None
        ) as sink:
            run_policy(
                OptPolicy(world.theta), world, run_seed=0, obs=obs, stream=sink
            )
    finally:
        log.close()
    persist_run_telemetry(directory, obs)
    persist_health(directory, obs.health_monitor)
    return directory


@pytest.fixture()
def torn_dir(run_dir, tmp_path):
    """The same run directory with ``trace.jsonl`` chopped mid-record."""
    directory = tmp_path / "torn"
    shutil.copytree(run_dir, directory)
    trace = directory / TRACE_FILENAME
    trace.write_bytes(trace.read_bytes()[:-9])
    return directory


# ----------------------------------------------------------------------
# JsonlFollower
# ----------------------------------------------------------------------
def test_follower_consumes_complete_lines_once(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\n{"b": 2}\n')
    follower = JsonlFollower(path)
    assert follower.poll() == [{"a": 1}, {"b": 2}]
    assert follower.poll() == []  # nothing new: no re-reads


def test_follower_leaves_a_partial_tail_then_reads_it_exactly_once(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\n{"b": 2')  # writer mid-record
    follower = JsonlFollower(path)
    assert follower.poll() == [{"a": 1}]
    assert follower.poll() == []  # the torn tail stays unconsumed
    with path.open("a", encoding="utf-8") as handle:
        handle.write('}\n')
    assert follower.poll() == [{"b": 2}]  # ... and arrives exactly once
    assert follower.poll() == []


def test_follower_stops_at_a_malformed_interior_line(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\nnot json\n{"c": 3}\n')
    follower = JsonlFollower(path)
    assert follower.poll() == [{"a": 1}]
    # The damaged line ends the valid prefix; the follower refuses to
    # skip bytes silently, so later records never leapfrog it.
    assert follower.poll() == []
    assert follower.poll() == []


def test_follower_restarts_after_the_file_shrinks(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\n{"b": 2}\n')
    follower = JsonlFollower(path)
    follower.poll()
    path.write_text('{"c": 3}\n')  # rotation: smaller file
    assert follower.poll() == [{"c": 3}]


def test_follower_tolerates_a_missing_file(tmp_path):
    follower = JsonlFollower(tmp_path / "absent.jsonl")
    assert follower.poll() == []
    assert follower.offset == 0


def test_health_events_from_trace_filters_to_health_fields():
    records = [
        {"kind": "span", "name": "round"},
        {"kind": "event", "name": "round_done", "fields": {"t": 1}},
        {"kind": "event", "name": "health", "fields": {"detector": "cusum"}},
    ]
    assert health_events_from_trace(records) == [{"detector": "cusum"}]


# ----------------------------------------------------------------------
# Sparklines
# ----------------------------------------------------------------------
def test_text_sparkline_shapes():
    assert text_sparkline([]) == ""
    assert text_sparkline([2.0, 2.0, 2.0]) == SPARK_BLOCKS[0] * 3
    ramp = text_sparkline([float(i) for i in range(8)])
    assert ramp[0] == SPARK_BLOCKS[0] and ramp[-1] == SPARK_BLOCKS[-1]
    assert len(text_sparkline([float(i) for i in range(200)])) == SPARK_WIDTH


# ----------------------------------------------------------------------
# obs health — document + renderers
# ----------------------------------------------------------------------
def test_load_health_document_prefers_the_recorded_file(run_dir):
    payload = load_health_document(run_dir)
    assert "rebuilt" not in payload
    assert payload["summary"]["OPT"]["cliff_onset"] == 2
    assert payload["summary"]["OPT"]["cliff_complete"] == 12


def test_load_health_document_rebuilds_offline_from_the_snapshot(tmp_path):
    config = SyntheticConfig(
        num_events=6,
        horizon=60,
        dim=3,
        capacity_mean=2.0,
        capacity_std=1.0,
        conflict_ratio=0.0,
        seed=1,
    )
    world = build_world(config)
    obs = Instrumentation()
    run_policy(UcbPolicy(dim=config.dim), world, run_seed=0, obs=obs)
    persist_run_telemetry(tmp_path, obs)  # metrics.json only, no --health
    payload = load_health_document(tmp_path)
    assert payload["rebuilt"] is True
    assert payload["events"] == events_from_snapshot(obs.snapshot())


def test_render_health_text_shows_detections_and_alerts(run_dir):
    payload = load_health_document(run_dir)
    alerts = load_alerts(run_dir)
    assert alerts, "the exhaustion world must fire at least one alert"
    text = render_health_text(payload, alerts)
    assert "learning health (per policy)" in text
    assert "OPT" in text and "cliff onset" in text
    assert "capacity-exhaustion" in text
    assert "rebuilt offline" not in text
    rebuilt = render_health_text({"summary": {}, "rebuilt": True}, [])
    assert "no health events recorded" in rebuilt
    assert "alerts: none fired" in rebuilt
    assert "rebuilt offline" in rebuilt


def test_health_table_rows_truncate_long_changepoint_lists():
    rows = health_table_rows(
        {
            "TS": {
                "detections": {CUSUM_DETECTOR: 9},
                "changepoints": list(range(9)),
            }
        }
    )
    assert rows[0][0] == "TS"
    assert "(9 total)" in rows[0][2]
    assert rows[0][3] == "-" and rows[0][4] == "-"  # no cliff marks


def test_write_health_html_embeds_sparklines_and_alerts(run_dir, tmp_path):
    from repro.obs.cli import load_snapshot

    payload = load_health_document(run_dir)
    alerts = load_alerts(run_dir)
    out = write_health_html(
        tmp_path / "health.html", payload, alerts, load_snapshot(run_dir)
    )
    html = out.read_text(encoding="utf-8")
    assert "<svg" in html
    assert "capacity-exhaustion" in html
    assert "OPT" in html


# ----------------------------------------------------------------------
# obs top — frames
# ----------------------------------------------------------------------
def test_top_lines_render_sparklines_detectors_and_alerts():
    obs = Instrumentation()
    series = obs.series("policy.UCB.reward")
    for t in range(10):
        series.append(t, float(t))
    events = [
        health_event(
            CAPACITY_CLIFF_DETECTOR, "UCB", "capacity_exhausted", 4, 1.0, "onset"
        )
    ]
    alerts = [
        {"rule": "capacity-exhaustion", "severity": "warning",
         "policy": "UCB", "round": 4}
    ]
    text = "\n".join(top_lines(obs.snapshot(), events, alerts))
    assert "reward (sparkline" in text
    assert "UCB" in text and "last=9" in text
    assert "cliff@4" in text
    assert "[warning " in text and "capacity-exhaustion" in text


def test_top_lines_of_an_idle_run_say_so():
    text = "\n".join(top_lines(Instrumentation().snapshot(), [], []))
    assert "health detectors: no events" in text
    assert "alerts: none fired" in text


def test_run_top_once_renders_a_single_frame(run_dir):
    out, err = io.StringIO(), io.StringIO()
    console = Console(quiet=False, color=False, out=out, err=err)
    assert run_top(run_dir, console, max_updates=1, sleep=lambda _s: None) == 0
    assert "top frame 1" in err.getvalue()
    body = out.getvalue()
    assert "reward (sparkline" in body and "OPT" in body
    assert "cliff@2" in body
    assert "capacity-exhaustion" in body


def test_run_top_rerenders_when_new_alerts_arrive(run_dir, tmp_path):
    directory = tmp_path / "live"
    shutil.copytree(run_dir, directory)
    out, err = io.StringIO(), io.StringIO()
    console = Console(quiet=False, color=False, out=out, err=err)

    def advance(_interval):
        with (directory / ALERTS_FILENAME).open("a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {"kind": "alert", "rule": "late-breaking",
                     "severity": "info", "metric": "m", "round": 99}
                )
                + "\n"
            )

    assert run_top(directory, console, max_updates=2, sleep=advance) == 0
    assert "top frame 2" in err.getvalue()
    assert "late-breaking" in out.getvalue()


def test_run_top_survives_a_torn_trace_without_double_reading(run_dir, torn_dir):
    out, err = io.StringIO(), io.StringIO()
    console = Console(quiet=False, color=False, out=out, err=err)
    torn = torn_dir / TRACE_FILENAME
    follower = JsonlFollower(torn)
    prefix = follower.poll()
    assert prefix  # the chop left a non-empty valid prefix
    assert run_top(torn_dir, console, max_updates=1, sleep=lambda _s: None) == 0
    assert "health detectors:" in out.getvalue()
    # Repair the tail with the bytes the crash cut off: the follower
    # resumes at its consumed offset and yields exactly the remaining
    # records — the prefix is never read twice.
    torn.write_bytes((run_dir / TRACE_FILENAME).read_bytes())
    resumed = follower.poll()
    assert resumed
    assert prefix + resumed == JsonlFollower(torn).poll()


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
def test_cli_obs_health_text(run_dir, capsys):
    assert cli_main(["obs", "health", str(run_dir)]) == 0
    captured = capsys.readouterr()
    assert "learning health (per policy)" in captured.out
    assert "capacity-exhaustion" in captured.out


def test_cli_obs_health_json(run_dir, capsys):
    assert cli_main(["obs", "health", str(run_dir), "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["OPT"]["cliff_onset"] == 2
    assert any(a["rule"] == "capacity-exhaustion" for a in document["alerts"])


def test_cli_obs_health_writes_the_html_report(run_dir, tmp_path, capsys):
    target = tmp_path / "report.html"
    assert cli_main(
        ["obs", "health", str(run_dir), "--html", str(target)]
    ) == 0
    assert "<svg" in target.read_text(encoding="utf-8")


def test_cli_obs_health_missing_directory_is_an_error(tmp_path, capsys):
    assert cli_main(["obs", "health", str(tmp_path / "nope")]) == 2
    assert capsys.readouterr().err


def test_cli_obs_top_once(run_dir, capsys):
    assert cli_main(["obs", "top", str(run_dir), "--once"]) == 0
    captured = capsys.readouterr()
    assert "reward (sparkline" in captured.out
    assert "cliff@2" in captured.out


def test_cli_obs_top_once_on_a_torn_trace(torn_dir, capsys):
    assert cli_main(["obs", "top", str(torn_dir), "--once"]) == 0
    assert "health detectors:" in capsys.readouterr().out


def test_cli_obs_tail_once_on_a_torn_trace(torn_dir, capsys):
    assert cli_main(["obs", "tail", str(torn_dir), "--once"]) == 0
    assert "env.rounds" in capsys.readouterr().out
