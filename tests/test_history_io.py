"""History serialisation round-trips."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.io.history_io import load_history, save_history
from repro.simulation.history import History


def make_history(with_kendall=False):
    kwargs = {}
    if with_kendall:
        kwargs = {
            "kendall_steps": np.array([10, 20]),
            "kendall_taus": np.array([0.1, 0.6]),
        }
    return History(
        policy_name="UCB",
        rewards=np.array([1.0, 0.0, 2.0]),
        arranged=np.array([2.0, 1.0, 3.0]),
        avg_round_time=0.001,
        **kwargs,
    )


def test_round_trip_without_kendall(tmp_path):
    path = save_history(make_history(), tmp_path / "run")
    assert path.suffix == ".npz"
    loaded = load_history(path)
    assert loaded.policy_name == "UCB"
    assert np.allclose(loaded.rewards, [1, 0, 2])
    assert np.allclose(loaded.arranged, [2, 1, 3])
    assert loaded.avg_round_time == pytest.approx(0.001)
    assert loaded.kendall_taus is None


def test_round_trip_with_kendall(tmp_path):
    path = save_history(make_history(with_kendall=True), tmp_path / "run.npz")
    loaded = load_history(path)
    assert loaded.kendall_steps.tolist() == [10, 20]
    assert np.allclose(loaded.kendall_taus, [0.1, 0.6])


def test_metrics_survive_the_round_trip(tmp_path):
    original = make_history()
    loaded = load_history(save_history(original, tmp_path / "run"))
    assert loaded.total_reward == original.total_reward
    assert loaded.overall_accept_ratio == original.overall_accept_ratio


def test_missing_file_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        load_history(tmp_path / "nope.npz")


def test_non_history_archive_rejected(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, stuff=np.ones(3))
    with pytest.raises(ConfigurationError):
        load_history(path)


def test_creates_parent_directories(tmp_path):
    path = save_history(make_history(), tmp_path / "deep" / "nested" / "run")
    assert path.exists()
