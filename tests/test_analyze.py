"""Tests for the whole-program analyzer (``repro.devtools.analyze``).

Covers: the FAS011-FAS014 rule catalogue on a seeded fixture project,
the golden JSON report, baseline add/expire round-trips, the incremental
summary cache, SARIF 2.1.0 rendering, pragma suppression, the CLI and
the self-check that the repository's own ``src/`` tree is clean modulo
the committed baseline.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools.analyze import (
    AnalyzeConfig,
    ProjectGraph,
    apply_baseline,
    load_baseline,
    registered_analyze_rules,
    render_sarif,
    run_project,
    summarize_module,
    write_baseline,
)
from repro.devtools.analyze.baseline import BASELINE_VERSION, collect, fingerprint
from repro.devtools.analyze.cli import collect_import_roots
from repro.devtools.analyze.sarif import SARIF_SCHEMA, SARIF_VERSION, TOOL_NAME
from repro.devtools.lint.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analyze"
PROJ = FIXTURES / "cases" / "proj"
CLEAN = FIXTURES / "cases" / "clean"

ANALYZE_RULES = ("FAS011", "FAS012", "FAS013", "FAS014")


def _run(root, **kwargs):
    kwargs.setdefault("baseline_path", None)
    kwargs.setdefault("cache_path", None)
    kwargs.setdefault("root_dirs", ())
    return run_project([Path(root) / "src"], **kwargs)


# ----------------------------------------------------------------------
# Registry / rule firing
# ----------------------------------------------------------------------
def test_registry_contains_the_whole_program_catalogue():
    registry = registered_analyze_rules()
    assert tuple(sorted(registry)) == ANALYZE_RULES
    for rule_id, rule_cls in registry.items():
        assert rule_cls.rule_id == rule_id
        assert rule_cls.summary


def test_each_rule_fires_exactly_once_on_the_seeded_project():
    result = _run(PROJ)
    counts = {}
    for violation in result.violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    assert counts == {rule_id: 1 for rule_id in ANALYZE_RULES}, render_text(
        result.violations
    )


def test_clean_project_produces_no_findings():
    result = _run(CLEAN)
    assert result.violations == [], render_text(result.violations)
    assert result.ok


def test_golden_json_report_matches():
    result = _run(PROJ)
    rendered = render_json(result.violations, base=PROJ)
    expected = (FIXTURES / "expected.json").read_text()
    assert rendered == expected


def test_select_and_ignore_filter_rules():
    only_dead = _run(PROJ, config=AnalyzeConfig(select=("FAS014",)))
    assert {v.rule_id for v in only_dead.violations} == {"FAS014"}
    no_dead = _run(PROJ, config=AnalyzeConfig(ignore=("FAS014",)))
    assert "FAS014" not in {v.rule_id for v in no_dead.violations}


def test_unknown_rule_id_is_rejected():
    with pytest.raises(ValueError, match="FAS999"):
        _run(PROJ, config=AnalyzeConfig(select=("FAS999",)))


# ----------------------------------------------------------------------
# Graph / summaries
# ----------------------------------------------------------------------
def test_module_summary_json_round_trip():
    path = PROJ / "src" / "miniapp" / "workers.py"
    summary = summarize_module(path, PROJ)
    payload = json.loads(json.dumps(summary.as_dict()))
    assert type(summary).from_dict(payload).as_dict() == summary.as_dict()


def test_call_graph_resolves_cross_module_imports():
    summaries = [
        summarize_module(path, PROJ)
        for path in sorted((PROJ / "src").rglob("*.py"))
    ]
    graph = ProjectGraph(summaries)
    edges = graph.call_edges["miniapp.pipeline.run_pipeline"]
    targets = {edge.target for edge in edges if edge.in_project}
    assert "miniapp.helpers._draw_noise" in targets


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_round_trip_absorbs_everything(tmp_path):
    result = _run(PROJ)
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, result.violations)
    entries = load_baseline(baseline)
    new, baselined, expired = apply_baseline(result.violations, entries)
    assert new == []
    assert sorted(baselined) == sorted(result.violations)
    assert expired == []


def test_baseline_expires_entries_for_fixed_findings():
    result = _run(PROJ)
    entries = collect(result.violations)
    survivors = [v for v in result.violations if v.rule_id != "FAS014"]
    new, baselined, expired = apply_baseline(survivors, entries)
    assert new == []
    assert len(baselined) == len(survivors)
    assert [entry["rule"] for entry in expired] == ["FAS014"]


def test_baseline_count_budget_flags_regressions():
    result = _run(PROJ)
    violation = result.violations[0]
    entries = collect([violation])
    new, baselined, _ = apply_baseline([violation, violation], entries)
    assert baselined == [violation]  # the budgeted occurrence
    assert new == [violation]  # the regression beyond the budget


def test_fingerprint_ignores_line_numbers():
    # Identity is (rule, path, message): two findings differing only by
    # location collapse to one fingerprint, so line drift is baselined.
    assert fingerprint("FAS014", "a.py", "m") == fingerprint("FAS014", "a.py", "m")
    assert fingerprint("FAS014", "a.py", "m") != fingerprint("FAS014", "b.py", "m")


def test_load_baseline_missing_file_is_empty():
    assert load_baseline(FIXTURES / "no-such-baseline.json") == []


def test_load_baseline_rejects_bad_documents(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 99, "findings": []}')
    with pytest.raises(ValueError, match="unsupported baseline version"):
        load_baseline(bad)
    not_baseline = tmp_path / "other.json"
    not_baseline.write_text('{"results": []}')
    with pytest.raises(ValueError, match="not a fasea analyze baseline"):
        load_baseline(not_baseline)


def test_committed_baseline_is_valid():
    entries = load_baseline(REPO_ROOT / "devtools" / "analyze-baseline.json")
    for entry in entries:
        assert entry["fingerprint"] == fingerprint(
            str(entry["rule"]), str(entry["path"]), str(entry["message"])
        )
    assert BASELINE_VERSION == 1


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
def test_warm_cache_reanalyzes_zero_unchanged_files(tmp_path):
    project = tmp_path / "proj"
    shutil.copytree(PROJ, project)
    cache = tmp_path / "cache.json"
    cold = _run(project, cache_path=cache)
    assert (cold.files_parsed, cold.files_cached) == (cold.files_total, 0)
    warm = _run(project, cache_path=cache)
    assert (warm.files_parsed, warm.files_cached) == (0, warm.files_total)
    assert warm.violations == cold.violations


def test_cache_invalidates_only_the_changed_file(tmp_path):
    project = tmp_path / "proj"
    shutil.copytree(PROJ, project)
    cache = tmp_path / "cache.json"
    cold = _run(project, cache_path=cache)
    target = project / "src" / "miniapp" / "legacy.py"
    target.write_text(target.read_text() + "\n# touched\n")
    warm = _run(project, cache_path=cache)
    assert warm.files_parsed == 1
    assert warm.files_cached == cold.files_total - 1
    assert warm.violations == cold.violations


def test_corrupt_cache_falls_back_to_a_full_parse(tmp_path):
    project = tmp_path / "proj"
    shutil.copytree(PROJ, project)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    result = _run(project, cache_path=cache)
    assert result.files_parsed == result.files_total
    assert len(result.violations) == len(ANALYZE_RULES)


# ----------------------------------------------------------------------
# Pragma suppression
# ----------------------------------------------------------------------
def test_analyzer_findings_respect_line_pragmas(tmp_path):
    project = tmp_path / "proj"
    shutil.copytree(PROJ, project)
    legacy = project / "src" / "miniapp" / "legacy.py"
    legacy.write_text(
        legacy.read_text().replace(
            "def unused_helper(values):",
            "def unused_helper(values):  # fasealint: disable=FAS014",
        )
    )
    result = _run(project)
    assert {v.rule_id for v in result.violations} == {
        "FAS011",
        "FAS012",
        "FAS013",
    }


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def _sarif_document(suppressed=None):
    result = _run(PROJ)
    summaries = {
        rule_id: rule_cls.summary
        for rule_id, rule_cls in registered_analyze_rules().items()
    }
    chosen = set(result.violations) if suppressed else None
    text = render_sarif(result.violations, summaries, suppressed=chosen, base=PROJ)
    return json.loads(text), result


def test_sarif_document_has_the_2_1_0_shape():
    document, result = _sarif_document()
    assert document["$schema"] == SARIF_SCHEMA
    assert document["version"] == SARIF_VERSION == "2.1.0"
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == TOOL_NAME
    assert [rule["id"] for rule in driver["rules"]] == list(ANALYZE_RULES)
    assert run["columnKind"] == "utf16CodeUnits"
    assert len(run["results"]) == len(result.violations)
    for entry, violation in zip(run["results"], sorted(result.violations)):
        assert entry["ruleId"] == violation.rule_id
        assert driver["rules"][entry["ruleIndex"]]["id"] == violation.rule_id
        assert entry["level"] == "error"
        assert entry["message"]["text"] == violation.message
        (location,) = entry["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"].startswith("src/miniapp/")
        assert physical["region"]["startLine"] == violation.line
        assert physical["region"]["startColumn"] == violation.col + 1


def test_sarif_marks_baselined_findings_as_suppressed():
    document, _ = _sarif_document(suppressed=True)
    for entry in document["runs"][0]["results"]:
        (suppression,) = entry["suppressions"]
        assert suppression["kind"] == "external"


def test_sarif_output_is_deterministic():
    first, _ = _sarif_document()
    second, _ = _sarif_document()
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


# ----------------------------------------------------------------------
# FAS014 roots from the import surface
# ----------------------------------------------------------------------
def test_collect_import_roots_reads_from_imports(tmp_path):
    consumer = tmp_path / "roots" / "test_consumer.py"
    consumer.parent.mkdir()
    consumer.write_text(
        "from miniapp.legacy import unused_helper\nimport miniapp.util\n"
    )
    roots = collect_import_roots([consumer.parent, tmp_path / "missing"])
    assert roots == ("miniapp.legacy.unused_helper",)


def test_extra_roots_resurrect_dead_exports():
    config = AnalyzeConfig(extra_roots=("miniapp.legacy.unused_helper",))
    result = _run(PROJ, config=config)
    assert "FAS014" not in {v.rule_id for v in result.violations}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _analyze_args(root, *extra):
    return [
        "analyze",
        str(Path(root) / "src"),
        "--no-baseline",
        "--no-cache",
        "--roots",
        "",
        *extra,
    ]


def test_cli_analyze_exit_codes(capsys):
    assert cli_main(_analyze_args(CLEAN)) == 0
    assert "no violations" in capsys.readouterr().out
    assert cli_main(_analyze_args(PROJ)) == 1
    out = capsys.readouterr().out
    for rule_id in ANALYZE_RULES:
        assert rule_id in out


def test_cli_analyze_status_line_reports_cache_counts(capsys):
    assert cli_main(_analyze_args(PROJ)) == 1
    err = capsys.readouterr().err
    assert "8 files (8 parsed, 0 cached)" in err
    assert "4 new" in err


def test_cli_analyze_json_format(capsys):
    assert cli_main(_analyze_args(PROJ, "--format", "json")) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 4
    assert set(payload["by_rule"]) == set(ANALYZE_RULES)


def test_cli_analyze_sarif_format(capsys):
    assert cli_main(_analyze_args(PROJ, "--format", "sarif")) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["$schema"] == SARIF_SCHEMA


def test_cli_analyze_update_baseline_then_gate(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    args = [
        "analyze",
        str(PROJ / "src"),
        "--no-cache",
        "--roots",
        "",
        "--baseline",
        str(baseline),
    ]
    assert cli_main([*args, "--update-baseline"]) == 0
    assert "baseline updated with 4 finding(s)" in capsys.readouterr().err
    assert cli_main(args) == 0  # same findings, now absorbed
    err = capsys.readouterr().err
    assert "4 baselined, 0 new" in err


def test_cli_analyze_unknown_rule_is_usage_error(capsys):
    assert cli_main(_analyze_args(PROJ, "--select", "FAS999")) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_analyze_list_rules(capsys):
    assert cli_main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ANALYZE_RULES:
        assert rule_id in out


def test_cli_lint_project_folds_in_analyzer_findings(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert cli_main(["lint", "--project", "--format", "json", "src"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 0


# ----------------------------------------------------------------------
# Self-check: the repository's own code is analyze-clean
# ----------------------------------------------------------------------
def test_repository_src_is_clean_modulo_committed_baseline():
    result = run_project(
        [REPO_ROOT / "src"],
        baseline_path=REPO_ROOT / "devtools" / "analyze-baseline.json",
        cache_path=None,
        root_dirs=(REPO_ROOT / "tests", REPO_ROOT / "benchmarks"),
    )
    assert result.ok, render_text(result.new_violations)
    assert result.files_total > 100  # the whole tree was visited
