"""The exact oracle, and Theorem 1's 1/c_u approximation bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebsn.conflicts import ConflictGraph, random_conflicts
from repro.exceptions import ConfigurationError
from repro.oracle.exact import arrangement_value, exact_arrangement
from repro.oracle.greedy import oracle_greedy


def test_exact_beats_greedy_on_the_classic_counterexample():
    """One high-score event conflicting with two medium ones."""
    scores = np.array([1.0, 0.8, 0.8])
    conflicts = ConflictGraph(3, [(0, 1), (0, 2)])
    greedy = oracle_greedy(scores, conflicts, np.ones(3), user_capacity=2)
    exact = exact_arrangement(scores, conflicts, np.ones(3), user_capacity=2)
    assert greedy == [0]
    assert exact == [1, 2]
    assert arrangement_value(scores, exact) > arrangement_value(scores, greedy)


def test_exact_respects_capacity_and_conflicts():
    scores = np.array([0.9, 0.8, 0.7, 0.6])
    conflicts = ConflictGraph(4, [(0, 1)])
    result = exact_arrangement(scores, conflicts, np.ones(4), user_capacity=2)
    assert conflicts.is_independent(result)
    assert len(result) <= 2


def test_exact_ignores_non_positive_scores():
    scores = np.array([-1.0, 0.0, 0.5])
    result = exact_arrangement(scores, ConflictGraph(3), np.ones(3), 3)
    assert result == [2]


def test_exact_skips_full_events():
    scores = np.array([5.0, 1.0])
    result = exact_arrangement(
        scores, ConflictGraph(2), np.array([0.0, 1.0]), user_capacity=2
    )
    assert result == [1]


def test_exact_refuses_oversized_instances():
    scores = np.ones(64)
    with pytest.raises(ConfigurationError):
        exact_arrangement(scores, ConflictGraph(64), np.ones(64), 3)


def test_arrangement_value_counts_positive_scores_only():
    scores = np.array([1.0, -2.0, 0.5])
    assert arrangement_value(scores, [0, 1, 2]) == pytest.approx(1.5)


@settings(max_examples=60, deadline=None)
@given(
    num_events=st.integers(2, 10),
    seed=st.integers(0, 10_000),
    ratio=st.floats(0.0, 1.0),
    capacity=st.integers(1, 5),
)
def test_theorem1_greedy_is_a_one_over_cu_approximation(
    num_events, seed, ratio, capacity
):
    """sum_{v in A | r>0} r >= (1/c_u) * optimum over positive scores."""
    rng = np.random.default_rng(seed)
    scores = rng.uniform(-1.0, 1.0, size=num_events)
    conflicts = ConflictGraph(num_events, random_conflicts(num_events, ratio, seed))
    remaining = rng.integers(0, 3, size=num_events).astype(float)
    greedy = oracle_greedy(scores, conflicts, remaining, capacity)
    exact = exact_arrangement(scores, conflicts, remaining, capacity)
    greedy_value = arrangement_value(scores, greedy)
    exact_value = arrangement_value(scores, exact)
    assert exact_value >= greedy_value - 1e-12  # exact really is optimal
    assert greedy_value >= exact_value / capacity - 1e-12  # Theorem 1
    # Feasibility of both.
    assert conflicts.is_independent(greedy)
    assert conflicts.is_independent(exact)
    assert all(remaining[v] > 0 for v in greedy + exact)
