"""The fasea CLI."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert "fig1" in out
    assert "tab7" in out
    assert "mab" in out
    assert len(out) == 18


def test_run_writes_reports(tmp_path, capsys):
    code = main(
        ["run", "fig2", "--out", str(tmp_path), "--horizon", "150", "--quiet"]
    )
    assert code == 0
    assert (tmp_path / "fig2" / "report.txt").exists()
    assert (tmp_path / "fig2" / "curve_kendall_tau.csv").exists()


def test_run_prints_report_unless_quiet(tmp_path, capsys):
    main(["run", "fig2", "--out", str(tmp_path), "--horizon", "150"])
    out = capsys.readouterr().out
    assert "kendall_tau" in out


def test_run_rejects_unknown_experiment(tmp_path):
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        main(["run", "fig99", "--out", str(tmp_path)])


def test_quickstart_runs(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "UCB" in out
    assert "Random" in out


def test_parser_rejects_bad_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fig1", "--scale", "huge"])


def test_export_damai_writes_the_bundle(tmp_path, capsys):
    assert main(["export-damai", "--out", str(tmp_path / "damai")]) == 0
    out = capsys.readouterr().out
    assert "events" in out
    assert (tmp_path / "damai" / "events.csv").exists()
    assert (tmp_path / "damai" / "manifest.json").exists()


def test_replicate_prints_ci_table(capsys):
    assert main(["replicate", "--seeds", "2", "--horizon", "200"]) == 0
    out = capsys.readouterr().out
    assert "accept_ratio" in out
    assert "UCB > TS on every seed" in out


def test_checkpoint_rejects_health_combo(tmp_path):
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError, match="cannot be combined with --health"):
        main(["quickstart", "--out", str(tmp_path), "--checkpoint", "--health"])


def test_checkpoint_rejects_bad_cadence(tmp_path, monkeypatch):
    from repro.exceptions import ConfigurationError

    monkeypatch.chdir(tmp_path)
    with pytest.raises(ConfigurationError, match="cadence must be >= 1"):
        main(["replicate", "--seeds", "1", "--horizon", "60", "--checkpoint", "0"])


def test_resume_requires_a_manifest(tmp_path):
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError, match="no checkpoint manifest"):
        main(
            ["replicate", "--seeds", "1", "--horizon", "60",
             "--resume", str(tmp_path / "nope")]
        )


def test_replicate_checkpoint_then_resume(tmp_path, monkeypatch, capsys):
    """A checkpointed replicate leaves a manifest; --resume validates it
    (rejecting changed flags) and replays a finished run from the cache."""
    from repro.exceptions import ConfigurationError

    monkeypatch.chdir(tmp_path)
    assert main(
        ["replicate", "--seeds", "2", "--horizon", "120", "--checkpoint", "60"]
    ) == 0
    first = capsys.readouterr().out
    assert "accept_ratio" in first
    ckpt = Path("results/replicate/checkpoints")
    assert (ckpt / "manifest.json").exists()

    with pytest.raises(ConfigurationError, match="horizon"):
        main(
            ["replicate", "--seeds", "2", "--horizon", "80",
             "--resume", str(ckpt)]
        )

    assert main(
        ["replicate", "--seeds", "2", "--horizon", "120", "--resume", str(ckpt)]
    ) == 0
    assert "accept_ratio" in capsys.readouterr().out
