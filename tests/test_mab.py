"""Basic multi-armed bandit substrate and the [9] contrast."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mab import (
    BernoulliArm,
    BetaThompsonSampling,
    EpsilonGreedyMab,
    RandomMab,
    Ucb1,
    run_mab,
)
from repro.mab.arms import random_arms

ARMS = [BernoulliArm(m) for m in (0.1, 0.35, 0.6, 0.85)]


def test_bernoulli_arm_validation():
    with pytest.raises(ConfigurationError):
        BernoulliArm(-0.1)
    with pytest.raises(ConfigurationError):
        BernoulliArm(1.1)


def test_bernoulli_arm_frequency():
    arm = BernoulliArm(0.3)
    rng = np.random.default_rng(0)
    pulls = [arm.pull(rng) for _ in range(5000)]
    assert np.mean(pulls) == pytest.approx(0.3, abs=0.02)


def test_random_arms_properties():
    arms = random_arms(10, seed=0, low=0.2, high=0.8)
    assert len(arms) == 10
    assert all(0.2 <= a.mean <= 0.8 for a in arms)
    with pytest.raises(ConfigurationError):
        random_arms(1)
    with pytest.raises(ConfigurationError):
        random_arms(5, low=0.9, high=0.1)


def test_algorithm_bookkeeping():
    algo = Ucb1(3)
    algo.observe(0, 1.0)
    algo.observe(0, 0.0)
    algo.observe(2, 1.0)
    assert algo.pulls.tolist() == [2, 0, 1]
    assert np.allclose(algo.empirical_means(), [0.5, 0.0, 1.0])
    with pytest.raises(ConfigurationError):
        algo.observe(5, 1.0)


def test_algorithms_need_two_arms():
    for cls in (Ucb1, BetaThompsonSampling, EpsilonGreedyMab, RandomMab):
        with pytest.raises(ConfigurationError):
            cls(1)


def test_ucb1_pulls_every_arm_first():
    algo = Ucb1(4)
    chosen = []
    for t in range(1, 5):
        arm = algo.select(t)
        chosen.append(arm)
        algo.observe(arm, 0.0)
    assert sorted(chosen) == [0, 1, 2, 3]


def test_egreedy_mab_validation():
    with pytest.raises(ConfigurationError):
        EpsilonGreedyMab(3, epsilon=2.0)


def test_reset_clears_counts():
    algo = BetaThompsonSampling(3, seed=0)
    algo.observe(1, 1.0)
    algo.reset()
    assert algo.pulls.sum() == 0


def test_run_mab_validates_inputs():
    algo = Ucb1(3)
    with pytest.raises(ConfigurationError):
        run_mab(algo, ARMS, 100)  # 4 arms vs num_arms=3
    with pytest.raises(ConfigurationError):
        run_mab(Ucb1(4), ARMS, 0)


def test_run_mab_history_shapes():
    history = run_mab(Ucb1(4), ARMS, 500, seed=0)
    assert history.horizon == 500
    assert history.best_mean == 0.85
    assert history.chosen_arms.min() >= 0
    assert history.chosen_arms.max() <= 3
    assert history.cumulative_regret().shape == (500,)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: Ucb1(4),
        lambda: BetaThompsonSampling(4, seed=0),
        lambda: EpsilonGreedyMab(4, seed=0),
    ],
)
def test_learners_converge_to_the_best_arm(factory):
    history = run_mab(factory(), ARMS, 3000, seed=1)
    late = history.chosen_arms[-500:]
    assert np.mean(late == 3) > 0.7


def test_learners_beat_random():
    random_regret = run_mab(RandomMab(4, seed=0), ARMS, 2000, seed=1).expected_regret()
    for factory in (lambda: Ucb1(4), lambda: BetaThompsonSampling(4, seed=0)):
        assert run_mab(factory(), ARMS, 2000, seed=1).expected_regret() < random_regret


def test_the_papers_premise_ts_wins_under_basic_mab():
    """Chapelle & Li [9]: TS beats UCB1 on independent Bernoulli arms.

    Averaged over several instances so the assertion is seed-robust.
    """
    ts_total = ucb_total = 0.0
    for seed in range(5):
        arms = random_arms(10, seed=seed)
        ts_total += run_mab(
            BetaThompsonSampling(10, seed=seed), arms, 3000, seed=100 + seed
        ).expected_regret()
        ucb_total += run_mab(
            Ucb1(10), arms, 3000, seed=100 + seed
        ).expected_regret()
    assert ts_total < ucb_total
