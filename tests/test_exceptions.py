"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro.exceptions import (
    CapacityError,
    ConfigurationError,
    ConflictError,
    LedgerError,
    NotFittedError,
    ReproError,
    SchemaError,
    UnknownEventError,
)

ALL_ERRORS = [
    CapacityError,
    ConfigurationError,
    ConflictError,
    LedgerError,
    NotFittedError,
    SchemaError,
    UnknownEventError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)


def test_unknown_event_is_also_a_key_error():
    assert issubclass(UnknownEventError, KeyError)


def test_catching_the_base_class_catches_everything():
    for error_type in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise error_type("boom")
