"""History metrics and checkpoint grids."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.history import History, default_checkpoints


def make_history(rewards, arranged, name="p"):
    return History(policy_name=name, rewards=rewards, arranged=arranged)


def test_shape_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        make_history([1, 2], [1])


def test_scalar_metrics():
    history = make_history([1, 0, 2], [2, 1, 3])
    assert history.horizon == 3
    assert history.total_reward == 3
    assert history.overall_accept_ratio == pytest.approx(3 / 6)


def test_accept_ratio_is_cumulative():
    history = make_history([1, 0, 1, 1], [1, 1, 1, 1])
    ratios = history.accept_ratio_at([1, 2, 4])
    assert np.allclose(ratios, [1.0, 0.5, 0.75])


def test_accept_ratio_zero_when_nothing_arranged():
    history = make_history([0, 0], [0, 0])
    assert np.allclose(history.accept_ratio_at([1, 2]), 0.0)


def test_regret_against_reference():
    policy = make_history([0, 1, 1], [1, 1, 1])
    reference = make_history([1, 1, 1], [1, 1, 1], name="OPT")
    assert np.allclose(policy.regret_at(reference, [1, 2, 3]), [1, 1, 1])


def test_regret_ratio():
    policy = make_history([1, 1], [1, 1])
    reference = make_history([2, 2], [1, 1])
    assert np.allclose(policy.regret_ratio_at(reference, [1, 2]), [1.0, 1.0])


def test_regret_requires_matching_horizons():
    with pytest.raises(ConfigurationError):
        make_history([1], [1]).regret_at(make_history([1, 1], [1, 1]), [1])


def test_checkpoint_bounds_validated():
    history = make_history([1, 1], [1, 1])
    with pytest.raises(ConfigurationError):
        history.rewards_at([0])
    with pytest.raises(ConfigurationError):
        history.rewards_at([3])
    with pytest.raises(ConfigurationError):
        history.rewards_at([])


def test_default_checkpoints_match_the_papers_grid():
    points = default_checkpoints(100_000)
    assert points[:10] == [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
    assert points[10] == 2000
    assert points[-1] == 100_000
    assert all(a < b for a, b in zip(points, points[1:]))


def test_default_checkpoints_small_horizons():
    assert default_checkpoints(50)[-1] == 50
    assert default_checkpoints(1) == [1]
    with pytest.raises(ConfigurationError):
        default_checkpoints(0)


def test_default_checkpoints_include_horizon():
    assert default_checkpoints(2500)[-1] == 2500
    assert default_checkpoints(150)[-1] == 150


def test_windowed_accept_ratio_tracks_local_behaviour():
    # First half everything accepted, second half everything rejected.
    history = make_history([1, 1, 1, 0, 0, 0], [1, 1, 1, 1, 1, 1])
    windowed = history.windowed_accept_ratio(window=2)
    assert np.allclose(windowed, [1.0, 1.0, 1.0, 0.5, 0.0, 0.0])
    # The cumulative ratio hides the collapse the window reveals.
    assert history.accept_ratio_at([6])[0] == pytest.approx(0.5)


def test_windowed_accept_ratio_partial_prefix_and_validation():
    history = make_history([1, 0], [1, 1])
    assert np.allclose(history.windowed_accept_ratio(10), [1.0, 0.5])
    with pytest.raises(ConfigurationError):
        history.windowed_accept_ratio(0)


def test_windowed_accept_ratio_zero_arranged_rounds():
    history = make_history([0, 1], [0, 1])
    windowed = history.windowed_accept_ratio(1)
    assert np.allclose(windowed, [0.0, 1.0])
