"""The five online policies plus OPT: behaviour on controlled views."""

import numpy as np
import pytest

from repro.bandits import (
    EpsilonGreedyPolicy,
    ExploitPolicy,
    OptPolicy,
    RandomPolicy,
    RoundView,
    ThompsonSamplingPolicy,
    UcbPolicy,
    make_policy,
)
from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.users import User
from repro.exceptions import ConfigurationError


def make_view(contexts, capacity=2, time_step=1, pairs=(), capacities=None):
    contexts = np.asarray(contexts, dtype=float)
    num_events = contexts.shape[0]
    if capacities is None:
        capacities = np.ones(num_events)
    return RoundView(
        time_step=time_step,
        user=User(user_id=0, capacity=capacity),
        contexts=contexts,
        remaining_capacities=np.asarray(capacities, dtype=float),
        conflicts=ConflictGraph(num_events, pairs),
    )


# ----------------------------------------------------------------------
# make_policy factory
# ----------------------------------------------------------------------
def test_make_policy_builds_each_algorithm():
    assert isinstance(make_policy("UCB", dim=3), UcbPolicy)
    assert isinstance(make_policy("TS", dim=3), ThompsonSamplingPolicy)
    assert isinstance(make_policy("eGreedy", dim=3), EpsilonGreedyPolicy)
    assert isinstance(make_policy("Exploit", dim=3), ExploitPolicy)
    assert isinstance(make_policy("Random", dim=3), RandomPolicy)


def test_make_policy_rejects_unknown_names():
    with pytest.raises(ValueError):
        make_policy("SARSA", dim=3)


def test_make_policy_passes_parameters_through():
    ucb = make_policy("UCB", dim=3, lam=2.0, alpha=1.5)
    assert ucb.alpha == 1.5
    assert ucb.model.lam == 2.0
    ts = make_policy("TS", dim=3, delta=0.2)
    assert ts.delta == 0.2
    egreedy = make_policy("eGreedy", dim=3, epsilon=0.05)
    assert egreedy.epsilon == 0.05


# ----------------------------------------------------------------------
# UCB
# ----------------------------------------------------------------------
def test_ucb_bonus_favours_unexplored_directions():
    ucb = UcbPolicy(dim=2, alpha=2.0)
    contexts = np.array([[1.0, 0.0], [0.0, 1.0]])
    # Train heavily on event 0's direction with zero reward.
    view = make_view(contexts)
    for _ in range(50):
        ucb.observe(view, [0], [0.0])
    bounds = ucb.upper_confidence_bounds(contexts)
    assert bounds[1] > bounds[0]
    assert ucb.select(make_view(contexts, capacity=1)) == [1]


def test_ucb_with_alpha_zero_is_pure_exploitation():
    ucb = UcbPolicy(dim=2, alpha=0.0)
    exploit = ExploitPolicy(dim=2)
    contexts = np.array([[0.5, 0.1], [0.2, 0.9]])
    view = make_view(contexts)
    for policy in (ucb, exploit):
        policy.observe(view, [0, 1], [1.0, 0.0])
    assert np.allclose(
        ucb.upper_confidence_bounds(contexts), exploit.predicted_scores(contexts)
    )
    assert ucb.select(view) == exploit.select(view)


def test_ucb_rejects_negative_alpha():
    with pytest.raises(ConfigurationError):
        UcbPolicy(dim=2, alpha=-1.0)


def test_ucb_escapes_all_reject_lock_in_but_exploit_does_not():
    """The paper's Table 7 story: fixed contexts, all feedback 0."""
    rng = np.random.default_rng(0)
    contexts = rng.uniform(0, 1, size=(6, 3))
    contexts /= np.linalg.norm(contexts, axis=1, keepdims=True)
    ucb = UcbPolicy(dim=3, alpha=2.0)
    exploit = ExploitPolicy(dim=3)
    exploit_arrangements = set()
    ucb_arrangements = set()
    for t in range(1, 31):
        view = make_view(contexts, capacity=2, time_step=t)
        a_ucb = ucb.select(view)
        a_exp = exploit.select(view)
        ucb.observe(view, a_ucb, [0.0] * len(a_ucb))
        exploit.observe(view, a_exp, [0.0] * len(a_exp))
        ucb_arrangements.add(tuple(a_ucb))
        exploit_arrangements.add(tuple(a_exp))
    assert len(exploit_arrangements) == 1  # locked in forever
    assert len(ucb_arrangements) > 1  # the bound keeps exploring


# ----------------------------------------------------------------------
# Thompson Sampling
# ----------------------------------------------------------------------
def test_ts_sampling_width_formula():
    ts = ThompsonSamplingPolicy(dim=4, delta=0.1, seed=0)
    expected = 1.0 * np.sqrt(9 * 4 * np.log(10 / 0.1))
    assert ts.sampling_width(10) == pytest.approx(expected)


def test_ts_sampling_width_grows_with_time_and_dim():
    ts_small = ThompsonSamplingPolicy(dim=2, seed=0)
    ts_large = ThompsonSamplingPolicy(dim=20, seed=0)
    assert ts_small.sampling_width(100) > ts_small.sampling_width(10)
    assert ts_large.sampling_width(10) > ts_small.sampling_width(10)


def test_ts_validation():
    with pytest.raises(ConfigurationError):
        ThompsonSamplingPolicy(dim=2, delta=0.0)
    with pytest.raises(ConfigurationError):
        ThompsonSamplingPolicy(dim=2, delta=1.0)
    with pytest.raises(ConfigurationError):
        ThompsonSamplingPolicy(dim=2, sub_gaussian_scale=0.0)
    ts = ThompsonSamplingPolicy(dim=2)
    with pytest.raises(ConfigurationError):
        ts.sampling_width(0)


def test_ts_is_deterministic_per_seed():
    contexts = np.array([[0.3, 0.4], [0.5, 0.1], [0.2, 0.9]])
    view = make_view(contexts)
    a = ThompsonSamplingPolicy(dim=2, seed=11).select(view)
    b = ThompsonSamplingPolicy(dim=2, seed=11).select(view)
    assert a == b


def test_ts_posterior_concentrates_with_data():
    ts = ThompsonSamplingPolicy(dim=2, seed=0)
    view = make_view(np.array([[1.0, 0.0], [0.0, 1.0]]))
    for _ in range(500):
        ts.observe(view, [0, 1], [1.0, 0.0])
    samples = np.vstack([ts.sample_theta(500) for _ in range(100)])
    # Coordinate 0 saw reward 1, coordinate 1 reward 0.
    assert samples[:, 0].mean() > samples[:, 1].mean()
    # Posterior spread shrinks relative to the prior width q.
    assert samples[:, 0].std() < ts.sampling_width(500)


def test_ts_ranking_scores_fluctuate_between_calls():
    """TS ranks by fresh posterior samples -> Figure 2's noisy tau."""
    ts = ThompsonSamplingPolicy(dim=3, seed=0)
    contexts = np.random.default_rng(0).uniform(size=(5, 3))
    first = ts.ranking_scores(contexts, time_step=10)
    second = ts.ranking_scores(contexts, time_step=10)
    assert not np.allclose(first, second)


# ----------------------------------------------------------------------
# eGreedy
# ----------------------------------------------------------------------
def test_egreedy_validation():
    with pytest.raises(ConfigurationError):
        EpsilonGreedyPolicy(dim=2, epsilon=-0.1)
    with pytest.raises(ConfigurationError):
        EpsilonGreedyPolicy(dim=2, epsilon=1.1)


def test_egreedy_epsilon_zero_equals_exploit():
    contexts = np.random.default_rng(3).uniform(size=(8, 3))
    egreedy = EpsilonGreedyPolicy(dim=3, epsilon=0.0, seed=0)
    exploit = ExploitPolicy(dim=3)
    view = make_view(contexts, capacity=3)
    for policy in (egreedy, exploit):
        policy.observe(view, [0, 3, 5], [1.0, 0.0, 1.0])
    assert egreedy.select(view) == exploit.select(view)


def test_egreedy_epsilon_one_always_explores_randomly():
    contexts = np.random.default_rng(3).uniform(size=(20, 3))
    egreedy = EpsilonGreedyPolicy(dim=3, epsilon=1.0, seed=0)
    view = make_view(contexts, capacity=2)
    arrangements = {tuple(egreedy.select(view)) for _ in range(15)}
    assert len(arrangements) > 1


def test_egreedy_explores_roughly_epsilon_fraction():
    contexts = np.eye(4)
    egreedy = EpsilonGreedyPolicy(dim=4, epsilon=0.3, seed=1)
    view = make_view(contexts, capacity=1)
    # Make the point estimate strongly favour event 0.
    for _ in range(100):
        egreedy.model.observe(contexts, [0], [1.0])
    non_greedy = sum(egreedy.select(view) != [0] for _ in range(500))
    # Random exploration picks a non-0 event ~ 0.3 * 3/4 of rounds.
    assert 0.10 < non_greedy / 500 < 0.40


# ----------------------------------------------------------------------
# Exploit / Random / OPT
# ----------------------------------------------------------------------
def test_exploit_tracks_its_point_estimate():
    contexts = np.array([[1.0, 0.0], [0.0, 1.0]])
    exploit = ExploitPolicy(dim=2)
    view = make_view(contexts, capacity=1)
    exploit.observe(view, [1], [1.0])
    assert exploit.select(view) == [1]


def test_random_policy_never_learns_and_is_feasible():
    contexts = np.random.default_rng(0).uniform(size=(10, 2))
    random_policy = RandomPolicy(seed=0)
    view = make_view(contexts, capacity=3, pairs=[(0, 1)])
    for _ in range(10):
        arrangement = random_policy.select(view)
        assert len(arrangement) <= 3
        assert view.conflicts.is_independent(arrangement)
    assert np.allclose(random_policy.predicted_scores(contexts), 0.0)


def test_opt_ranks_by_true_expected_reward():
    theta = np.array([1.0, 0.0])
    contexts = np.array([[0.1, 0.9], [0.8, 0.1], [0.5, 0.5]])
    opt = OptPolicy(theta)
    view = make_view(contexts, capacity=2)
    assert opt.select(view) == [1, 2]


def test_opt_validates_dimensions():
    opt = OptPolicy(np.ones(3))
    with pytest.raises(ConfigurationError):
        opt.select(make_view(np.ones((2, 2))))
    with pytest.raises(ConfigurationError):
        OptPolicy(np.array([]))


def test_policies_never_violate_constraints():
    """Every policy's arrangement is feasible on a constrained view."""
    rng = np.random.default_rng(5)
    contexts = rng.uniform(-1, 1, size=(8, 3))
    pairs = [(0, 1), (2, 3), (4, 5)]
    capacities = np.array([1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0])
    policies = [
        UcbPolicy(dim=3),
        ThompsonSamplingPolicy(dim=3, seed=0),
        EpsilonGreedyPolicy(dim=3, seed=0),
        ExploitPolicy(dim=3),
        RandomPolicy(seed=0),
        OptPolicy(np.ones(3)),
    ]
    for policy in policies:
        for t in range(1, 6):
            view = make_view(
                contexts, capacity=3, time_step=t, pairs=pairs, capacities=capacities
            )
            arrangement = policy.select(view)
            assert len(arrangement) <= 3
            assert view.conflicts.is_independent(arrangement)
            assert all(capacities[v] > 0 for v in arrangement)
            policy.observe(view, arrangement, [0.0] * len(arrangement))


def test_reset_clears_learned_state():
    contexts = np.array([[1.0, 0.0], [0.0, 1.0]])
    view = make_view(contexts)
    for policy in (
        UcbPolicy(dim=2),
        ThompsonSamplingPolicy(dim=2, seed=0),
        EpsilonGreedyPolicy(dim=2, seed=0),
        ExploitPolicy(dim=2),
    ):
        policy.observe(view, [0], [1.0])
        policy.reset()
        assert np.allclose(policy.predicted_scores(contexts), 0.0)
