"""Event records and the capacity-tracking EventStore."""

import math

import numpy as np
import pytest

from repro.ebsn.events import Event, EventStore
from repro.exceptions import CapacityError, ConfigurationError, UnknownEventError


def test_event_validation():
    with pytest.raises(ConfigurationError):
        Event(event_id=-1, capacity=1)
    with pytest.raises(ConfigurationError):
        Event(event_id=0, capacity=-1)
    with pytest.raises(ConfigurationError):
        Event(event_id=0, capacity=float("nan"))


def test_store_requires_dense_ids():
    with pytest.raises(ConfigurationError):
        EventStore([Event(0, 1), Event(2, 1)])
    with pytest.raises(ConfigurationError):
        EventStore([])


def test_store_orders_events_by_id():
    store = EventStore([Event(1, 5), Event(0, 3)])
    assert [e.event_id for e in store] == [0, 1]
    assert store[0].capacity == 3


def test_from_capacities_roundtrip():
    store = EventStore.from_capacities([2, 4, 1])
    assert len(store) == 3
    assert np.allclose(store.initial_capacities, [2, 4, 1])
    assert np.allclose(store.remaining_capacities, [2, 4, 1])


def test_register_decrements_and_full_events_reject():
    store = EventStore.from_capacities([1, 2])
    store.register(0)
    assert store.remaining(0) == 0
    assert not store.is_available(0)
    with pytest.raises(CapacityError):
        store.register(0)
    assert store.is_available(1)


def test_release_returns_a_slot_and_guards_overflow():
    store = EventStore.from_capacities([1])
    store.register(0)
    store.release(0)
    assert store.remaining(0) == 1
    with pytest.raises(CapacityError):
        store.release(0)


def test_unknown_event_ids_raise():
    store = EventStore.from_capacities([1])
    with pytest.raises(UnknownEventError):
        store.register(5)
    with pytest.raises(UnknownEventError):
        store[5]
    with pytest.raises(UnknownEventError):
        store.remaining(-1)


def test_available_mask_and_counts():
    store = EventStore.from_capacities([1, 1, 2])
    store.register(0)
    assert store.num_available() == 2
    assert store.available_mask().tolist() == [False, True, True]
    assert store.total_remaining() == 3


def test_unlimited_capacity_never_exhausts():
    store = EventStore.with_unlimited_capacity(2)
    for _ in range(100):
        store.register(0)
    assert store.is_available(0)
    assert math.isinf(store.total_remaining())


def test_reset_restores_initial_capacities():
    store = EventStore.from_capacities([2, 2])
    store.register(0)
    store.register(0)
    store.reset()
    assert np.allclose(store.remaining_capacities, [2, 2])


def test_remaining_capacities_returns_a_copy():
    store = EventStore.from_capacities([2])
    snapshot = store.remaining_capacities
    snapshot[0] = 0
    assert store.remaining(0) == 2
