"""Behaviour at and after full capacity exhaustion.

The paper's regret curves hinge on what happens when events run out;
these tests pin the mechanics: empty arrangements are legal, runs
continue gracefully, and no policy can squeeze rewards out of an empty
catalogue.
"""

import numpy as np
import pytest

from repro.bandits import OptPolicy, RandomPolicy, UcbPolicy
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.simulation.fleet import run_policy_fleet
from repro.simulation.runner import run_policy


@pytest.fixture(scope="module")
def tiny_capacity_world():
    """Total capacity ~ 12 slots; exhausted within a few dozen rounds."""
    return build_world(
        SyntheticConfig(
            num_events=6,
            horizon=300,
            dim=3,
            capacity_mean=2.0,
            capacity_std=1.0,
            conflict_ratio=0.0,
            seed=1,
        )
    )


def test_total_rewards_capped_by_total_capacity(tiny_capacity_world):
    for policy in (OptPolicy(tiny_capacity_world.theta), RandomPolicy(seed=0)):
        history = run_policy(policy, tiny_capacity_world, run_seed=0)
        assert history.total_reward <= tiny_capacity_world.capacities.sum()


def test_rounds_continue_after_exhaustion(tiny_capacity_world):
    history = run_policy(
        OptPolicy(tiny_capacity_world.theta), tiny_capacity_world, run_seed=0
    )
    assert history.horizon == 300  # the run did not abort
    # The tail arranges nothing once every event is full.
    assert history.arranged[-50:].sum() == 0
    assert history.rewards[-50:].sum() == 0


def test_cumulative_accept_ratio_is_stable_after_exhaustion(tiny_capacity_world):
    history = run_policy(
        OptPolicy(tiny_capacity_world.theta), tiny_capacity_world, run_seed=0
    )
    late = history.accept_ratio_at([250, 300])
    assert late[0] == pytest.approx(late[1])


def test_windowed_ratio_drops_to_zero_after_exhaustion(tiny_capacity_world):
    history = run_policy(
        OptPolicy(tiny_capacity_world.theta), tiny_capacity_world, run_seed=0
    )
    windowed = history.windowed_accept_ratio(window=20)
    assert windowed[-1] == 0.0
    assert windowed.max() > 0.0


def test_learners_keep_models_consistent_through_exhaustion(tiny_capacity_world):
    """UCB's model updates stop (nothing arranged) but stay queryable."""
    ucb = UcbPolicy(dim=3)
    history = run_policy(ucb, tiny_capacity_world, run_seed=0)
    scores = ucb.predicted_scores(np.eye(3))
    assert np.all(np.isfinite(scores))
    assert history.horizon == 300


def test_fleet_handles_exhaustion_per_policy(tiny_capacity_world):
    fleet = run_policy_fleet(
        {"OPT": OptPolicy(tiny_capacity_world.theta), "Random": RandomPolicy(seed=0)},
        tiny_capacity_world,
        horizon=300,
    )
    for history in fleet.values():
        assert history.total_reward <= tiny_capacity_world.capacities.sum()
        assert history.horizon == 300


def test_regret_plateau_detected_on_exhausted_run(tiny_capacity_world):
    from repro.analysis import detect_plateau

    history = run_policy(
        OptPolicy(tiny_capacity_world.theta), tiny_capacity_world, run_seed=0
    )
    plateau = detect_plateau(
        history.cumulative_rewards(), window=50, tolerance=0.01
    )
    assert plateau is not None
    assert plateau < 250
