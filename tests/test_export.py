"""Dataset export/import round trips."""

import csv
import json

import pytest

from repro.datasets.export import export_damai, read_event_table
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def exported(tmp_path_factory, damai_module):
    directory = tmp_path_factory.mktemp("damai_export")
    return export_damai(damai_module, directory), damai_module


@pytest.fixture(scope="module")
def damai_module():
    from repro.datasets.damai import load_damai

    return load_damai()


def test_all_files_written(exported):
    paths, _ = exported
    assert set(paths) == {
        "events",
        "users",
        "feedback",
        "conflicts",
        "features_u1",
        "manifest",
    }
    for path in paths.values():
        assert path.exists()


def test_event_table_round_trips(exported):
    paths, dataset = exported
    rows = read_event_table(paths["events"])
    assert len(rows) == 50
    assert rows[0]["title"] == dataset.events[0].title
    assert rows[7]["category"] == dataset.events[7].category
    assert float(rows[3]["start_hour"]) == dataset.events[3].start_hour


def test_feedback_matrix_matches_the_dataset(exported):
    paths, dataset = exported
    with paths["feedback"].open(newline="") as handle:
        rows = list(csv.reader(handle))
    assert len(rows) == 20  # header + 19 users
    for row, user in zip(rows[1:], dataset.users):
        values = [int(v) for v in row[1:]]
        assert sum(values) == user.yes_count


def test_conflicts_file_matches_the_graph(exported):
    paths, dataset = exported
    with paths["conflicts"].open(newline="") as handle:
        rows = list(csv.reader(handle))[1:]
    pairs = {(int(i), int(j)) for i, j in rows}
    assert pairs == set(dataset.conflicts.pairs())


def test_manifest_describes_the_bundle(exported):
    paths, dataset = exported
    manifest = json.loads(paths["manifest"].read_text())
    assert manifest["num_events"] == 50
    assert manifest["num_users"] == 19
    assert manifest["dim"] == 20
    assert manifest["conflict_pairs"] == dataset.conflicts.num_pairs()


def test_read_event_table_missing_file(tmp_path):
    with pytest.raises(ConfigurationError):
        read_event_table(tmp_path / "missing.csv")
