"""The Damai-like real dataset: schema fidelity and determinism."""

import numpy as np
import pytest

from repro.datasets.damai import (
    CATEGORIES,
    DAYS_OF_WEEK,
    FEATURE_DIM,
    MAX_YES,
    MIN_YES,
    NUM_EVENTS,
    NUM_USERS,
    build_schema,
    load_damai,
)


def test_catalogue_sizes_match_the_paper(damai):
    assert damai.num_events == NUM_EVENTS == 50
    assert len(damai.users) == NUM_USERS == 19
    assert damai.dim == FEATURE_DIM == 20


def test_schema_is_exactly_twenty_dimensional():
    assert build_schema().dim == 20


def test_table3_categories_and_subcategories():
    assert set(CATEGORIES) == {
        "Pop Concert",
        "Theater",
        "Sports",
        "Folk Art",
        "Music",
        "Movie",
    }
    assert len(CATEGORIES["Movie"]) == 7
    assert "cross talk" in CATEGORIES["Folk Art"]


def test_every_event_uses_a_valid_subcategory(damai):
    for event in damai.events:
        assert event.subcategory in CATEGORIES[event.category]
        assert event.day_of_week in DAYS_OF_WEEK


def test_feature_matrix_shape_and_norm_bound(damai):
    for user in damai.users[:3]:
        matrix = damai.feature_matrix(user)
        assert matrix.shape == (50, 20)
        assert np.all(np.linalg.norm(matrix, axis=1) <= 1.0)
        assert np.all(matrix >= 0.0)


def test_feature_matrices_depend_on_the_user(damai):
    """The distance column differs between users (contexts summarise both)."""
    a = damai.feature_matrix(damai.users[0])
    b = damai.feature_matrix(damai.users[1])
    assert not np.allclose(a, b)
    # Only the distance column (last) may differ.
    assert np.allclose(a[:, :-1], b[:, :-1])


def test_yes_counts_are_in_the_papers_range(damai):
    for user in damai.users:
        assert MIN_YES <= user.yes_count <= MAX_YES


def test_feedback_is_deterministic_and_consistent(damai):
    user = damai.users[0]
    vector = damai.feedback_vector(user)
    assert vector.sum() == user.yes_count
    for event in damai.events:
        assert bool(vector[event.event_id]) == user.accepts(event.event_id)


def test_conflicts_come_from_time_overlap(damai):
    for i, j in damai.conflicts.pairs():
        assert damai.events[i].overlaps(damai.events[j])
    # And all overlapping pairs are conflicts.
    for i, first in enumerate(damai.events):
        for second in damai.events[i + 1 :]:
            if first.overlaps(second):
                assert damai.conflicts.conflicts(
                    first.event_id, second.event_id
                )


def test_dataset_is_deterministic_in_its_seed(damai):
    again = load_damai()
    assert [e.title for e in again.events] == [e.title for e in damai.events]
    assert [u.yes_events for u in again.users] == [u.yes_events for u in damai.users]


def test_other_seeds_give_schema_identical_variants():
    other = load_damai(seed=7)
    assert other.num_events == 50
    assert other.dim == 20
    assert [u.yes_count for u in other.users] != [
        u.yes_count for u in load_damai().users
    ]


def test_preferred_tags_come_from_yes_events(damai):
    for user in damai.users:
        yes_tags = {
            tag for e in user.yes_events for tag in damai.events[e].tags
        }
        assert user.preferred_tags == yes_tags


def test_platform_events_have_unlimited_capacity(damai):
    events = damai.platform_events()
    assert len(events) == 50
    assert all(np.isinf(e.capacity) for e in events)
    assert all(e.tags for e in events)
