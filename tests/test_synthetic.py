"""Synthetic world generation (Table 4)."""

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.exceptions import ConfigurationError


def test_paper_default_matches_table4_bold_values():
    config = SyntheticConfig.paper_default()
    assert config.num_events == 500
    assert config.horizon == 100_000
    assert config.dim == 20
    assert config.theta_distribution == "uniform"
    assert config.context_distribution == "uniform"
    assert (config.capacity_mean, config.capacity_std) == (200.0, 100.0)
    assert (config.user_capacity_min, config.user_capacity_max) == (1, 5)
    assert config.conflict_ratio == 0.25


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SyntheticConfig(num_events=0)
    with pytest.raises(ConfigurationError):
        SyntheticConfig(horizon=0)
    with pytest.raises(ConfigurationError):
        SyntheticConfig(dim=0)
    with pytest.raises(ConfigurationError):
        SyntheticConfig(conflict_ratio=1.5)
    with pytest.raises(ConfigurationError):
        SyntheticConfig(theta_distribution="zipf")


def test_with_overrides_is_a_functional_update():
    base = SyntheticConfig.scaled_default(seed=1)
    changed = base.with_overrides(dim=5)
    assert changed.dim == 5
    assert base.dim == 20
    assert changed.seed == 1


def test_world_is_deterministic_in_its_seed(small_config):
    a = build_world(small_config)
    b = build_world(small_config)
    assert np.allclose(a.theta, b.theta)
    assert np.allclose(a.capacities, b.capacities)
    assert a.conflict_pairs == b.conflict_pairs


def test_different_seeds_differ():
    a = build_world(SyntheticConfig.scaled_default(seed=0))
    b = build_world(SyntheticConfig.scaled_default(seed=1))
    assert not np.allclose(a.theta, b.theta)


def test_world_static_parts_are_consistent(small_world, small_config):
    assert small_world.theta.shape == (small_config.dim,)
    assert np.linalg.norm(small_world.theta) == pytest.approx(1.0)
    assert small_world.capacities.shape == (small_config.num_events,)
    assert small_world.capacities.min() >= 1
    assert small_world.conflicts.conflict_ratio() == pytest.approx(
        small_config.conflict_ratio, abs=0.02
    )


def test_context_sampler_rows_are_unit_normalized(small_world):
    sampler = small_world.make_context_sampler()
    contexts = sampler.sample(np.random.default_rng(0))
    assert contexts.shape == (12, 4)
    assert np.allclose(np.linalg.norm(contexts, axis=1), 1.0)


def test_accept_probabilities_are_clipped(small_world):
    contexts = np.vstack([small_world.theta, -small_world.theta])
    probabilities = small_world.accept_probabilities(contexts)
    assert probabilities[0] == pytest.approx(1.0)
    assert probabilities[1] == 0.0


def test_evaluation_contexts_are_deterministic(small_world):
    assert np.allclose(
        small_world.evaluation_contexts(), small_world.evaluation_contexts()
    )


def test_fresh_stores_do_not_share_state(small_world):
    store_a = small_world.make_store()
    store_b = small_world.make_store()
    store_a.register(0)
    assert store_b.remaining(0) == small_world.capacities[0]
