"""Stateful property test: the platform substrate under random traffic.

A hypothesis rule-based machine drives a platform with arbitrary (but
feasibility-filtered) arrangements, random feedback, releases and
resets, and checks the accounting invariants after every step.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.events import EventStore
from repro.ebsn.platform import Platform
from repro.ebsn.users import User

NUM_EVENTS = 6
CAPACITIES = [3, 2, 4, 1, 2, 3]
CONFLICTS = [(0, 1), (2, 3)]


class PlatformMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.platform = Platform(
            EventStore.from_capacities(CAPACITIES),
            ConflictGraph(NUM_EVENTS, CONFLICTS),
        )
        self.expected_accepted = np.zeros(NUM_EVENTS)
        self.expected_rewards = 0
        self.rounds = 0

    @rule(
        wanted=st.lists(
            st.integers(0, NUM_EVENTS - 1), min_size=0, max_size=4, unique=True
        ),
        accept_bits=st.integers(0, 2**NUM_EVENTS - 1),
        capacity=st.integers(1, 4),
    )
    def commit_round(self, wanted, accept_bits, capacity):
        # Filter the wish list down to a feasible arrangement.
        arrangement = []
        for event_id in wanted:
            if len(arrangement) >= capacity:
                break
            if not self.platform.store.is_available(event_id):
                continue
            if self.platform.conflicts.conflicts_with_any(event_id, arrangement):
                continue
            arrangement.append(event_id)
        user = User(user_id=self.rounds, capacity=capacity)
        entry = self.platform.commit(
            user, arrangement, feedback=lambda e: bool((accept_bits >> e) & 1)
        )
        self.rounds += 1
        self.expected_rewards += entry.reward
        for event_id in entry.accepted:
            self.expected_accepted[event_id] += 1

    @rule()
    def reset(self):
        self.platform.reset()
        self.expected_accepted = np.zeros(NUM_EVENTS)
        self.expected_rewards = 0
        self.rounds = 0

    @invariant()
    def capacities_reconcile(self):
        remaining = self.platform.store.remaining_capacities
        assert np.allclose(
            remaining, np.asarray(CAPACITIES, dtype=float) - self.expected_accepted
        )
        assert np.all(remaining >= 0)

    @invariant()
    def ledger_reconciles(self):
        assert self.platform.ledger.total_reward() == self.expected_rewards
        assert len(self.platform.ledger) == self.rounds
        per_event = self.platform.ledger.registrations_per_event()
        for event_id in range(NUM_EVENTS):
            assert per_event.get(event_id, 0) == self.expected_accepted[event_id]

    @invariant()
    def no_ledger_entry_violates_constraints(self):
        for entry in self.platform.ledger:
            assert self.platform.conflicts.is_independent(entry.arranged)


TestPlatformMachine = PlatformMachine.TestCase
TestPlatformMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
