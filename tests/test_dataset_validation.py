"""Dataset validators."""

import math

import numpy as np
import pytest

from repro.datasets.damai import load_damai
from repro.datasets.synthetic import SyntheticConfig, SyntheticWorld, build_world
from repro.datasets.validation import (
    DatasetValidationError,
    validate_damai,
    validate_world,
)


def test_generated_world_validates(small_world):
    passed = validate_world(small_world)
    assert len(passed) >= 5


def test_meetup_world_validates():
    from repro.datasets.meetup import MeetupConfig, build_meetup_world

    world = build_meetup_world(MeetupConfig(num_events=20, seed=1))
    assert validate_world(world)


def test_bad_theta_detected(small_world):
    broken = SyntheticWorld(
        small_world.config,
        small_world.theta * 2.0,  # norm 2
        small_world.capacities,
        small_world.conflict_pairs,
    )
    with pytest.raises(DatasetValidationError, match="theta norm"):
        validate_world(broken)


def test_bad_capacities_detected(small_world):
    broken = SyntheticWorld(
        small_world.config,
        small_world.theta,
        small_world.capacities * 0.5,  # fractional
        small_world.conflict_pairs,
    )
    with pytest.raises(DatasetValidationError):
        validate_world(broken)


def test_zero_capacity_detected(small_world):
    capacities = small_world.capacities.copy()
    capacities[0] = 0
    broken = SyntheticWorld(
        small_world.config, small_world.theta, capacities, small_world.conflict_pairs
    )
    with pytest.raises(DatasetValidationError, match="capacity"):
        validate_world(broken)


def test_canonical_damai_validates(damai):
    passed = validate_damai(damai)
    assert len(passed) == 4


def test_other_seed_damai_validates():
    assert validate_damai(load_damai(seed=99))


def test_damai_with_wrong_user_count_detected(damai):
    from repro.datasets.damai import DamaiDataset

    broken = DamaiDataset(
        damai.events, damai.users[:-1], damai.schema, damai.conflicts
    )
    with pytest.raises(DatasetValidationError, match="users"):
        validate_damai(broken)


def test_damai_with_spurious_conflict_detected(damai):
    from repro.datasets.damai import DamaiDataset
    from repro.ebsn.conflicts import ConflictGraph

    # Add a conflict between two non-overlapping events.
    non_overlapping = None
    for i in range(50):
        for j in range(i + 1, 50):
            if not damai.events[i].overlaps(damai.events[j]):
                non_overlapping = (i, j)
                break
        if non_overlapping:
            break
    pairs = list(damai.conflicts.pairs()) + [non_overlapping]
    broken = DamaiDataset(
        damai.events, damai.users, damai.schema, ConflictGraph(50, pairs)
    )
    with pytest.raises(DatasetValidationError, match="overlap"):
        validate_damai(broken)
