"""The Meetup-like workload generator."""

import numpy as np
import pytest

from repro.datasets.meetup import (
    NUM_ATTRIBUTES,
    TOPICS,
    MeetupConfig,
    MeetupContextSampler,
    build_meetup_world,
)
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def meetup_world():
    return build_meetup_world(MeetupConfig(num_events=30, horizon=500, seed=2))


def test_config_dim_is_topics_plus_attributes():
    config = MeetupConfig(num_topics=8)
    assert config.dim == 8 + NUM_ATTRIBUTES


def test_config_validation():
    with pytest.raises(ConfigurationError):
        MeetupConfig(num_topics=0)
    with pytest.raises(ConfigurationError):
        MeetupConfig(num_topics=len(TOPICS) + 1)


def test_world_shapes(meetup_world):
    assert meetup_world.static_features.shape == (30, meetup_world.config.dim)
    assert len(meetup_world.event_titles) == 30
    assert np.linalg.norm(meetup_world.theta) == pytest.approx(1.0)


def test_topic_mixtures_are_sparse_distributions(meetup_world):
    topics = meetup_world.static_features[:, : meetup_world.meetup_config.num_topics]
    assert np.all(topics >= 0)
    assert np.allclose(topics.sum(axis=1), 1.0)
    # Each event mixes at most 3 topics.
    assert np.all((topics > 0).sum(axis=1) <= 3)


def test_theta_dislikes_price_and_distance(meetup_world):
    num_topics = meetup_world.meetup_config.num_topics
    assert meetup_world.theta[num_topics + 0] < 0  # price
    assert meetup_world.theta[num_topics + 1] < 0  # distance
    assert meetup_world.theta[num_topics + 3] > 0  # reputation


def test_sampler_produces_unit_rows_and_round_variation(meetup_world):
    sampler = meetup_world.make_context_sampler()
    assert isinstance(sampler, MeetupContextSampler)
    rng = np.random.default_rng(0)
    first = sampler.sample(rng)
    second = sampler.sample(rng)
    assert np.allclose(np.linalg.norm(first, axis=1), 1.0)
    assert not np.allclose(first, second)  # per-round user interests differ


def test_world_is_deterministic():
    a = build_meetup_world(MeetupConfig(num_events=10, seed=9))
    b = build_meetup_world(MeetupConfig(num_events=10, seed=9))
    assert np.allclose(a.theta, b.theta)
    assert np.allclose(a.static_features, b.static_features)
    assert a.event_titles == b.event_titles


def test_world_plugs_into_the_standard_runner(meetup_world):
    from repro.bandits import UcbPolicy
    from repro.simulation import run_policy

    history = run_policy(
        UcbPolicy(dim=meetup_world.config.dim), meetup_world, horizon=100
    )
    assert history.horizon == 100
    assert history.total_reward >= 0
