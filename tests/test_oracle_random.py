"""The random-order oracle behind the Random baseline."""

import numpy as np

from repro.ebsn.conflicts import ConflictGraph
from repro.oracle.random_order import random_arrangement


def test_random_arrangement_is_feasible():
    conflicts = ConflictGraph(10, [(0, 1), (2, 3), (4, 5)])
    capacities = np.array([1.0] * 5 + [0.0] * 5)
    for seed in range(20):
        result = random_arrangement(conflicts, capacities, user_capacity=3, rng=seed)
        assert len(result) <= 3
        assert conflicts.is_independent(result)
        assert all(capacities[v] > 0 for v in result)


def test_random_arrangement_fills_capacity_when_possible():
    conflicts = ConflictGraph(10)
    result = random_arrangement(conflicts, np.ones(10), user_capacity=4, rng=0)
    assert len(result) == 4


def test_random_arrangement_varies_with_seed():
    conflicts = ConflictGraph(30)
    results = {
        tuple(random_arrangement(conflicts, np.ones(30), 3, rng=seed))
        for seed in range(10)
    }
    assert len(results) > 1


def test_random_arrangement_deterministic_per_seed():
    conflicts = ConflictGraph(10)
    a = random_arrangement(conflicts, np.ones(10), 3, rng=42)
    b = random_arrangement(conflicts, np.ones(10), 3, rng=42)
    assert a == b
