"""Disjoint-model LinUCB (the no-sharing control)."""

import numpy as np
import pytest

from repro.bandits import UcbPolicy
from repro.bandits.base import RoundView
from repro.bandits.disjoint import DisjointUcbPolicy
from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.users import User
from repro.exceptions import ConfigurationError


def make_view(contexts, capacity=2, time_step=1):
    contexts = np.asarray(contexts, dtype=float)
    return RoundView(
        time_step=time_step,
        user=User(user_id=0, capacity=capacity),
        contexts=contexts,
        remaining_capacities=np.ones(contexts.shape[0]),
        conflicts=ConflictGraph(contexts.shape[0]),
    )


def test_validation():
    with pytest.raises(ConfigurationError):
        DisjointUcbPolicy(num_events=0, dim=3)
    with pytest.raises(ConfigurationError):
        DisjointUcbPolicy(num_events=3, dim=3, alpha=-1)
    policy = DisjointUcbPolicy(num_events=3, dim=3)
    with pytest.raises(ConfigurationError):
        policy.model_for(5)
    with pytest.raises(ConfigurationError):
        policy.upper_confidence_bounds(np.ones((4, 3)))


def test_models_are_independent():
    policy = DisjointUcbPolicy(num_events=2, dim=2)
    contexts = np.array([[1.0, 0.0], [1.0, 0.0]])  # identical contexts!
    view = make_view(contexts)
    # Only event 0 observes feedback.
    for _ in range(30):
        policy.observe(view, [0], [1.0])
    scores = policy.predicted_scores(contexts)
    # Event 0's model learned; event 1's did not — no generalisation.
    assert scores[0] > 0.5
    assert scores[1] == pytest.approx(0.0)


def test_shared_model_generalises_where_disjoint_cannot():
    """The paper's coupling argument, stated as a test."""
    shared = UcbPolicy(dim=2, alpha=0.0)
    disjoint = DisjointUcbPolicy(num_events=2, dim=2, alpha=0.0)
    contexts = np.array([[1.0, 0.0], [0.9, 0.1]])
    view = make_view(contexts)
    for _ in range(30):
        shared.observe(view, [0], [1.0])
        disjoint.observe(view, [0], [1.0])
    # Shared model predicts event 1 well from event 0's data alone.
    assert shared.predicted_scores(contexts)[1] > 0.5
    assert disjoint.predicted_scores(contexts)[1] == pytest.approx(0.0)


def test_select_respects_constraints():
    policy = DisjointUcbPolicy(num_events=4, dim=2)
    contexts = np.random.default_rng(0).uniform(size=(4, 2))
    view = RoundView(
        time_step=1,
        user=User(user_id=0, capacity=2),
        contexts=contexts,
        remaining_capacities=np.array([1.0, 0.0, 1.0, 1.0]),
        conflicts=ConflictGraph(4, [(0, 2)]),
    )
    arrangement = policy.select(view)
    assert len(arrangement) <= 2
    assert 1 not in arrangement
    assert not {0, 2} <= set(arrangement)


def test_disjoint_learns_slower_on_a_world(small_world):
    """At equal horizon, the shared model wins — the paper's coupling
    explanation from the opposite direction."""
    from repro.simulation.runner import run_policy

    horizon = 800
    shared = run_policy(
        UcbPolicy(dim=4), small_world, horizon=horizon, run_seed=0
    )
    disjoint = run_policy(
        DisjointUcbPolicy(num_events=12, dim=4),
        small_world,
        horizon=horizon,
        run_seed=0,
    )
    assert shared.total_reward >= disjoint.total_reward


def test_reset_clears_all_models():
    policy = DisjointUcbPolicy(num_events=2, dim=2)
    view = make_view(np.eye(2))
    policy.observe(view, [0, 1], [1.0, 1.0])
    policy.reset()
    assert np.allclose(policy.predicted_scores(np.eye(2)), 0.0)
