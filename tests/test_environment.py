"""The FASEA environment: protocol, coupling, constraint enforcement."""

import numpy as np
import pytest

from repro.bandits import OptPolicy, RandomPolicy
from repro.exceptions import CapacityError, ConfigurationError, ConflictError
from repro.simulation.environment import FaseaEnvironment


def test_round_protocol_must_alternate(small_world):
    env = FaseaEnvironment(small_world, run_seed=0)
    with pytest.raises(ConfigurationError):
        env.commit([])
    env.begin_round()
    with pytest.raises(ConfigurationError):
        env.begin_round()


def test_view_exposes_the_revealed_quantities(small_world, small_config):
    env = FaseaEnvironment(small_world, run_seed=0)
    view = env.begin_round()
    assert view.time_step == 1
    assert view.contexts.shape == (small_config.num_events, small_config.dim)
    assert np.allclose(np.linalg.norm(view.contexts, axis=1), 1.0)
    assert 1 <= view.user.capacity <= 5
    assert np.allclose(view.remaining_capacities, small_world.capacities)


def test_common_random_numbers_across_policies(small_world):
    """Two runs with the same run_seed see identical users/contexts/coins."""

    def run_and_capture(policy):
        env = FaseaEnvironment(small_world, run_seed=7)
        captured = []
        for _ in range(20):
            view = env.begin_round()
            arrangement = policy.select(view)
            rewards, _ = env.commit(arrangement)
            captured.append(
                (view.user.capacity, view.contexts.copy(), tuple(arrangement))
            )
        return captured

    first = run_and_capture(RandomPolicy(seed=0))
    second = run_and_capture(OptPolicy(small_world.theta))
    for (cap_a, ctx_a, _), (cap_b, ctx_b, _) in zip(first, second):
        assert cap_a == cap_b
        assert np.allclose(ctx_a, ctx_b)


def test_feedback_coins_are_shared_across_policies(small_world):
    """If two policies arrange the same event at step t, the outcome agrees."""

    def outcomes(policy_seed):
        env = FaseaEnvironment(small_world, run_seed=3)
        results = {}
        policy = OptPolicy(small_world.theta)  # deterministic arrangement
        for t in range(1, 16):
            view = env.begin_round()
            arrangement = policy.select(view)
            rewards, _ = env.commit(arrangement)
            for event_id, reward in zip(arrangement, rewards):
                results[(t, event_id)] = reward
        return results

    assert outcomes(0) == outcomes(1)


def test_accepted_events_consume_capacity(small_world):
    env = FaseaEnvironment(small_world, run_seed=0)
    view = env.begin_round()
    arrangement = OptPolicy(small_world.theta).select(view)
    rewards, entry = env.commit(arrangement)
    after = env.platform.store.remaining_capacities
    for event_id, reward in zip(arrangement, rewards):
        expected = small_world.capacities[event_id] - (1 if reward else 0)
        assert after[event_id] == expected


def test_commit_validates_against_the_platform(small_world):
    env = FaseaEnvironment(small_world, run_seed=0)
    view = env.begin_round()
    # Find a conflicting pair to submit deliberately.
    pair = next(iter(small_world.conflicts.pairs()), None)
    if pair is None:
        pytest.skip("no conflicts in this world")
    if view.user.capacity < 2:
        env.commit([])  # consume the round
        view = env.begin_round()
    with pytest.raises(ConflictError):
        env.commit(list(pair))


def test_rewards_follow_the_linear_payoff():
    """Empirical accept frequency tracks clip(x^T theta, 0, 1)."""
    from repro.datasets.synthetic import SyntheticConfig, build_world

    world = build_world(
        SyntheticConfig(
            num_events=12,
            horizon=1000,
            dim=4,
            capacity_mean=10_000.0,  # never exhausts -> plenty of trials
            capacity_std=1.0,
            conflict_ratio=0.0,
            seed=0,
        )
    )
    env = FaseaEnvironment(world, run_seed=0)
    opt = OptPolicy(world.theta)
    accepted = 0.0
    expected = 0.0
    variance = 0.0
    for _ in range(1000):
        view = env.begin_round()
        arrangement = opt.select(view)
        probs = world.accept_probabilities(view.contexts)
        rewards, _ = env.commit(arrangement)
        accepted += sum(rewards)
        expected += float(sum(probs[v] for v in arrangement))
        variance += float(sum(probs[v] * (1 - probs[v]) for v in arrangement))
    assert abs(accepted - expected) < 4.0 * np.sqrt(variance)
