"""The executable paper-claims registry."""

import pytest

from repro.experiments.claims import (
    CLAIMS,
    check_efficiency_ordering,
    check_ts_recovers_at_d1,
    check_ts_wins_basic_mab,
    check_ucb_escapes_lock_in,
    check_ucb_exploit_best,
    run_claims,
)


def test_registry_ids_are_unique_and_named():
    ids = [claim_id for claim_id, _, _ in CLAIMS]
    assert len(set(ids)) == len(ids) == 5
    for _, statement, checker in CLAIMS:
        assert statement
        assert callable(checker)


def test_claim1_headline_orderings():
    holds, evidence = check_ucb_exploit_best(horizon=1500)
    assert holds, evidence
    assert "UCB=" in evidence


def test_claim2_basic_mab_premise():
    holds, evidence = check_ts_wins_basic_mab()
    assert holds, evidence


def test_claim3_lock_in_escape():
    holds, evidence = check_ucb_escapes_lock_in(horizon=150)
    assert holds, evidence
    assert "lock Exploit" in evidence


def test_claim4_efficiency():
    holds, evidence = check_efficiency_ordering(rounds=60)
    assert holds, evidence


def test_claim5_ts_at_d1():
    holds, evidence = check_ts_recovers_at_d1(horizon=1200)
    assert holds, evidence


def test_run_claims_filters_by_id():
    results = run_claims(only=["C2"])
    assert len(results) == 1
    assert results[0].claim_id == "C2"
    assert results[0].holds
    assert results[0].seconds > 0


def test_cli_claims_subcommand(capsys):
    from repro.cli import main

    assert main(["claims", "C2"]) == 0
    out = capsys.readouterr().out
    assert "REPRODUCED" in out
    assert "1/1 claims reproduced" in out
