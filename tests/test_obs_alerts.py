"""Deterministic alert engine guarantees.

The tentpole promises, tested directly: rules parse from alerts.toml
(tomllib and the dependency-free fallback agree), evaluation is
edge-triggered per round with cooldowns and per-cell baselines, the
crash-safe log follows the flight-recorder discipline, and a parallel
run's ``alerts.jsonl`` is byte-identical to the serial one.
"""

import json

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.exceptions import ConfigurationError
from repro.obs.alerts import (
    ALERTS_FILENAME,
    ALERTS_SCHEMA_VERSION,
    DEFAULT_ALERT_RULES,
    AlertBuffer,
    AlertEngine,
    AlertLog,
    AlertRule,
    _parse_toml_subset,
    alert_line,
    load_alert_rules,
    load_alerts,
    rules_from_payload,
)
from repro.obs.core import Instrumentation, use
from repro.obs.health import CAPACITY_CLIFF_DETECTOR, HealthMonitor, health_event
from repro.parallel import PolicyRunCell, run_policy_run_cell, run_work_units

SAMPLE_TOML = """\
# Capacity cliff: the paper's regret-drop diagnostic.
[[alert]]
name = "cliff"
detector = "capacity_cliff"
severity = "warning"
policy = "OPT*"

[[alert]]
name = "reward-floor"          # trailing comment with "quotes # inside"
metric = "policy.*.reward"
aggregate = "mean"
window = 5
op = "lt"
value = 0.25
cooldown = 10
severity = "critical"
"""


# ----------------------------------------------------------------------
# Rule validation and parsing
# ----------------------------------------------------------------------
def test_rule_requires_exactly_one_of_metric_or_detector():
    with pytest.raises(ConfigurationError):
        AlertRule(name="both", metric="x", op="gt", value=1.0, detector="cusum")
    with pytest.raises(ConfigurationError):
        AlertRule(name="neither")


def test_rule_field_validation():
    with pytest.raises(ConfigurationError):
        AlertRule(name="r", metric="x", op="nope", value=1.0)
    with pytest.raises(ConfigurationError):
        AlertRule(name="r", metric="x", op="gt")  # no threshold
    with pytest.raises(ConfigurationError):
        AlertRule(name="r", metric="x", op="gt", value=1.0, aggregate="median")
    with pytest.raises(ConfigurationError):
        AlertRule(name="r", metric="x", op="gt", value=1.0, window=0)
    with pytest.raises(ConfigurationError):
        AlertRule(name="r", detector="not_a_detector")
    with pytest.raises(ConfigurationError):
        AlertRule(name="r", detector="cusum", severity="panic")


def test_rules_from_payload_rejects_unknown_keys():
    with pytest.raises(ConfigurationError, match="unknown"):
        rules_from_payload({"alert": [{"name": "r", "detector": "cusum", "oops": 1}]})
    with pytest.raises(ConfigurationError, match="no .?.?alert"):
        rules_from_payload({"alert": []})


def test_load_alert_rules_parses_toml(tmp_path):
    path = tmp_path / "alerts.toml"
    path.write_text(SAMPLE_TOML)
    rules = load_alert_rules(path)
    assert [rule.name for rule in rules] == ["cliff", "reward-floor"]
    assert rules[0].detector == CAPACITY_CLIFF_DETECTOR
    assert rules[0].policy == "OPT*"
    assert rules[1].window == 5 and rules[1].cooldown == 10
    assert rules[1].value == 0.25 and rules[1].op == "lt"


def test_fallback_parser_agrees_with_tomllib():
    import tomllib

    assert _parse_toml_subset(SAMPLE_TOML) == tomllib.loads(SAMPLE_TOML)


def test_fallback_parser_rejects_what_it_cannot_read():
    with pytest.raises(ConfigurationError, match="only"):
        _parse_toml_subset("[other]\nname = 1\n")
    with pytest.raises(ConfigurationError, match="key = value"):
        _parse_toml_subset("name = 1\n")  # key before any [[alert]]
    with pytest.raises(ConfigurationError, match="cannot parse"):
        _parse_toml_subset('[[alert]]\nname = {nested = 1}\n')


def test_load_alert_rules_missing_file(tmp_path):
    with pytest.raises(ConfigurationError, match="no alert rules"):
        load_alert_rules(tmp_path / "nope.toml")


def test_default_rules_include_the_capacity_exhaustion_alert():
    by_name = {rule.name: rule for rule in DEFAULT_ALERT_RULES}
    assert by_name["capacity-exhaustion"].detector == CAPACITY_CLIFF_DETECTOR
    assert by_name["reward-collapse"].severity == "critical"


# ----------------------------------------------------------------------
# Engine semantics
# ----------------------------------------------------------------------
def _engine(*rules):
    buffer = AlertBuffer()
    return AlertEngine(rules, buffer), buffer


def test_metric_rule_is_edge_triggered():
    engine, buffer = _engine(
        AlertRule(name="hot", metric="temp", op="gt", value=10.0)
    )
    obs = Instrumentation()
    gauge = obs.gauge("temp")
    for round_, value in enumerate([5.0, 20.0, 30.0, 5.0, 25.0], start=1):
        gauge.set(value)
        engine.evaluate_round(obs, round_)
    # Fires on each false->true transition only: rounds 2 and 5.
    assert [r["round"] for r in buffer.records] == [2, 5]
    record = buffer.records[0]
    assert record["schema_version"] == ALERTS_SCHEMA_VERSION
    assert record["rule"] == "hot" and record["value"] == 20.0


def test_cooldown_spaces_re_firings():
    engine, buffer = _engine(
        AlertRule(name="hot", metric="temp", op="gt", value=10.0, cooldown=5)
    )
    obs = Instrumentation()
    gauge = obs.gauge("temp")
    values = [20.0, 5.0, 20.0, 5.0, 20.0, 5.0, 20.0]
    for round_, value in enumerate(values, start=1):
        gauge.set(value)
        engine.evaluate_round(obs, round_)
    # Transitions at rounds 1, 3, 5, 7 — but <5 rounds apart are muted.
    assert [r["round"] for r in buffer.records] == [1, 7]


def test_series_window_minimum_guard():
    engine, buffer = _engine(
        AlertRule(
            name="low", metric="reward", op="lt", value=0.5,
            aggregate="mean", window=3,
        )
    )
    obs = Instrumentation()
    series = obs.series("reward")
    for round_ in range(1, 3):
        series.append(round_, 0.0)
        engine.evaluate_round(obs, round_)
    assert buffer.records == []  # fewer than `window` points: not evaluable
    series.append(3, 0.0)
    engine.evaluate_round(obs, 3)
    assert [r["round"] for r in buffer.records] == [3]


def test_count_aggregate_needs_no_window_fill():
    engine, buffer = _engine(
        AlertRule(
            name="any-drain", metric="drained", op="ge", value=1.0,
            aggregate="count",
        )
    )
    obs = Instrumentation()
    obs.series("drained").append(4, 2.0)
    engine.evaluate_round(obs, 4)
    assert [r["round"] for r in buffer.records] == [4]


def test_counter_windows_are_cell_local():
    engine, buffer = _engine(
        AlertRule(name="calls", metric="oracle.calls", op="gt", value=2.0)
    )
    obs = Instrumentation()
    counter = obs.counter("oracle.calls")
    counter.inc(3)
    engine.evaluate_round(obs, 1)
    assert len(buffer.records) == 1
    # A new cell re-baselines: the counter's absolute value no longer
    # counts, only what this cell adds — like a worker's fresh registry.
    engine.begin_cell(obs)
    counter.inc(1)
    engine.evaluate_round(obs, 1)
    assert len(buffer.records) == 1


def test_detector_rule_fires_on_matching_health_events():
    engine, buffer = _engine(
        AlertRule(name="cliff", detector=CAPACITY_CLIFF_DETECTOR, policy="OPT")
    )
    obs = Instrumentation()
    obs.health_monitor = HealthMonitor()
    obs.health_monitor.extend([
        health_event(
            CAPACITY_CLIFF_DETECTOR, "OPT", "capacity_exhausted", 2, 5.0, "onset"
        ),
        health_event(
            CAPACITY_CLIFF_DETECTOR, "UCB", "capacity_exhausted", 9, 1.0, "onset"
        ),
        health_event("cusum", "OPT", "reward", 30, 0.0, "down"),
    ])
    engine.evaluate_round(obs, 30)
    assert len(buffer.records) == 1
    record = buffer.records[0]
    assert record["policy"] == "OPT" and record["round"] == 2
    assert record["direction"] == "onset"
    # The cursor advanced: re-evaluating does not re-fire old events.
    engine.evaluate_round(obs, 31)
    assert len(buffer.records) == 1


def test_engine_requires_rules():
    with pytest.raises(ConfigurationError):
        AlertEngine(())


# ----------------------------------------------------------------------
# The crash-safe log
# ----------------------------------------------------------------------
def test_alert_line_serializes_with_sorted_keys():
    assert alert_line({"b": 1, "a": 2}) == '{"a": 2, "b": 1}'


def test_alert_log_truncates_and_appends(tmp_path):
    (tmp_path / ALERTS_FILENAME).write_text('{"kind": "stale"}\n')
    with AlertLog(tmp_path) as log:
        log.record({"kind": "alert", "round": 1})
        log.extend([{"kind": "alert", "round": 2}])
        assert log.num_records == 2
    assert load_alerts(tmp_path) == [
        {"kind": "alert", "round": 1},
        {"kind": "alert", "round": 2},
    ]


def test_alert_log_refuses_use_after_close(tmp_path):
    log = AlertLog(tmp_path)
    log.close()
    with pytest.raises(ConfigurationError):
        log.record({"kind": "alert"})
    with pytest.raises(ConfigurationError):
        AlertLog(tmp_path, fsync_every_records=0)


def test_load_alerts_recovers_longest_valid_prefix(tmp_path):
    path = tmp_path / ALERTS_FILENAME
    lines = [json.dumps({"round": i}) for i in range(3)]
    path.write_text("\n".join(lines) + '\n{"round": 3, "trunc')
    with pytest.raises(Exception):
        load_alerts(tmp_path)  # strict: a torn tail is an error
    recovered = load_alerts(tmp_path, strict=False)
    assert recovered == [{"round": 0}, {"round": 1}, {"round": 2}]


def test_load_alerts_missing_log_reads_empty(tmp_path):
    assert load_alerts(tmp_path) == []


# ----------------------------------------------------------------------
# Serial vs parallel byte-identity
# ----------------------------------------------------------------------
EXHAUST_CONFIG = SyntheticConfig(
    num_events=6,
    horizon=40,
    dim=3,
    capacity_mean=2.0,
    capacity_std=1.0,
    conflict_ratio=0.0,
    seed=1,
)


def _alert_run(directory, jobs):
    obs = Instrumentation()
    obs.health_monitor = HealthMonitor()
    log = AlertLog(directory)
    obs.alert_engine = AlertEngine(DEFAULT_ALERT_RULES, log)
    cells = [
        PolicyRunCell(
            config=EXHAUST_CONFIG,
            policy_name=name,
            horizon=40,
            run_seed=0,
            policy_seed=3,
        )
        for name in ("OPT", "UCB", "eGreedy")
    ]
    try:
        with use(obs):
            run_work_units(run_policy_run_cell, cells, jobs=jobs)
    finally:
        log.close()
    return obs


def test_parallel_alert_log_is_byte_identical_to_serial(tmp_path):
    serial_obs = _alert_run(tmp_path / "serial", jobs=1)
    pool_obs = _alert_run(tmp_path / "pool", jobs=2)
    serial = (tmp_path / "serial" / ALERTS_FILENAME).read_bytes()
    pooled = (tmp_path / "pool" / ALERTS_FILENAME).read_bytes()
    assert serial == pooled
    # The tiny world exhausts under OPT, so the gate is non-vacuous.
    assert any(
        record["rule"] == "capacity-exhaustion"
        for record in load_alerts(tmp_path / "serial")
    )
    assert serial_obs.health_monitor.events == pool_obs.health_monitor.events
