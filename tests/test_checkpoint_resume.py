"""Kill-and-resume byte-identity (the crash-safety acceptance bar).

A checkpointed multi-policy run is SIGKILL'd mid-flight in a real
subprocess, then resumed with ``--resume`` semantics; the resumed run's
``decisions.jsonl``, per-policy rewards and scrubbed ``metrics.json``
must be **byte-identical** to an uninterrupted run's — serially and
under ``jobs=4``.

The kill is injected by monkeypatching ``RunCheckpointer.save`` in the
driver subprocess *before* any pool exists: forked workers inherit the
patch, so the kill fires inside whichever process performs the
checkpoint save (the main process when serial, a pool worker when
parallel).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: argv: out_dir ckpt_dir jobs mode(fresh|resume).  Env KILL_AFTER_SAVES=k
#: SIGKILLs the executing process on its k-th checkpoint save.
DRIVER = r"""
import json
import os
import signal
import sys

out_dir, ckpt_dir, jobs, mode = sys.argv[1:5]

kill_after = int(os.environ.get("KILL_AFTER_SAVES", "0"))
if kill_after:
    from repro.io import checkpoint as ckpt_mod

    real_save = ckpt_mod.RunCheckpointer.save
    saves = {"n": 0}

    def killing_save(self, arrays):
        path = real_save(self, arrays)
        saves["n"] += 1
        if saves["n"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        return path

    ckpt_mod.RunCheckpointer.save = killing_save

from repro.datasets.synthetic import SyntheticConfig
from repro.io.checkpoint import CellCheckpointSpec, ExecutorCheckpoint
from repro.io.runstore import persist_run_telemetry
from repro.obs.core import Instrumentation, use
from repro.obs.flight import FlightRecorder, make_run_header
from repro.parallel import OPT_KEY, PolicyRunCell, run_policy_run_cell, run_work_units

HORIZON = 300
EVERY = 40
POLICY_SEED = 7
config = SyntheticConfig(
    num_events=12,
    horizon=HORIZON,
    dim=4,
    capacity_mean=8.0,
    capacity_std=3.0,
    conflict_ratio=0.25,
    seed=0,
)
names = (OPT_KEY, "UCB", "TS", "eGreedy")
resume = mode == "resume"

obs = Instrumentation()
specs = [{"name": OPT_KEY}] + [
    {"name": name, "seed": POLICY_SEED} for name in names[1:]
]
flight = FlightRecorder(
    out_dir, run=make_run_header(config, HORIZON, 0, specs)
)
obs.flight_recorder = flight
cells = [
    PolicyRunCell(
        config=config,
        policy_name=name,
        horizon=HORIZON,
        run_seed=0,
        policy_seed=POLICY_SEED,
        checkpoint=CellCheckpointSpec(
            directory=ckpt_dir, key=name, every=EVERY, resume=resume
        ),
    )
    for name in names
]
try:
    with use(obs):
        histories = run_work_units(
            run_policy_run_cell,
            cells,
            jobs=int(jobs),
            checkpoint=ExecutorCheckpoint(ckpt_dir, resume=resume),
        )
finally:
    flight.close()
persist_run_telemetry(out_dir, obs)
rewards = {
    name: list(map(float, history.rewards))
    for name, history in zip(names, histories)
}
with open(os.path.join(out_dir, "rewards.json"), "w") as handle:
    json.dump(rewards, handle, indent=2, sort_keys=True)
print("completed")
"""


def _run_driver(out_dir, ckpt_dir, jobs, mode, kill_after=None):
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    env.pop("KILL_AFTER_SAVES", None)
    if kill_after is not None:
        env["KILL_AFTER_SAVES"] = str(kill_after)
    return subprocess.run(
        [sys.executable, "-c", DRIVER, str(out_dir), str(ckpt_dir), str(jobs), mode],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def _scrubbed_metrics(out_dir) -> dict:
    """metrics.json minus wall-clock metrics (names containing 'seconds')."""
    document = json.loads((Path(out_dir) / "metrics.json").read_text())
    return {
        section: (
            {
                name: value
                for name, value in content.items()
                if "seconds" not in name
            }
            if isinstance(content, dict)
            else content
        )
        for section, content in document.items()
    }


@pytest.mark.slow
@pytest.mark.parametrize("jobs", [1, 4])
def test_killed_run_resumes_byte_identically(tmp_path, jobs):
    golden_out = tmp_path / "golden"
    golden = _run_driver(golden_out, tmp_path / "golden-ckpt", jobs, "fresh")
    assert golden.returncode == 0, golden.stderr

    victim_out = tmp_path / "victim"
    victim_ckpt = tmp_path / "victim-ckpt"
    # Serial: the whole driver dies on the 9th save (OPT finishes its 7,
    # the kill lands mid-UCB).  Parallel: each worker dies on its own
    # 3rd save, so the first death lands mid-cell for every policy.
    crashed = _run_driver(
        victim_out, victim_ckpt, jobs, "fresh", kill_after=9 if jobs == 1 else 3
    )
    assert crashed.returncode != 0, "the kill did not happen"
    if jobs == 1:
        assert crashed.returncode == -signal.SIGKILL
    assert list(victim_ckpt.glob("*.ckpt.npz")), "no checkpoint was saved"
    assert not (victim_out / "rewards.json").exists()

    resumed = _run_driver(victim_out, victim_ckpt, jobs, "resume")
    assert resumed.returncode == 0, resumed.stderr
    assert "completed" in resumed.stdout

    golden_decisions = (golden_out / "decisions.jsonl").read_bytes()
    assert (victim_out / "decisions.jsonl").read_bytes() == golden_decisions
    assert golden_decisions.count(b"\n") > 4 * 300  # one record per round
    golden_rewards = (golden_out / "rewards.json").read_bytes()
    assert (victim_out / "rewards.json").read_bytes() == golden_rewards
    assert _scrubbed_metrics(victim_out) == _scrubbed_metrics(golden_out)
    # The deterministic metrics survived the scrub (it removed only
    # wall-clock noise, not the run's substance).
    counters = _scrubbed_metrics(victim_out)["counters"]
    assert counters["checkpoint.saves"] > 0
    assert counters["env.rounds"] == 4 * 300


@pytest.mark.slow
def test_completed_cells_replay_from_cache(tmp_path):
    """Resuming a *finished* run replays everything from the unit cache
    (round checkpoints are cleared on completion) byte-identically."""
    out_dir = tmp_path / "out"
    ckpt_dir = tmp_path / "ckpt"
    first = _run_driver(out_dir, ckpt_dir, 1, "fresh")
    assert first.returncode == 0, first.stderr
    assert not list(ckpt_dir.glob("*.ckpt.npz"))  # slots cleared
    baseline_rewards = (out_dir / "rewards.json").read_bytes()
    baseline_decisions = (out_dir / "decisions.jsonl").read_bytes()
    baseline_metrics = _scrubbed_metrics(out_dir)

    replay_out = tmp_path / "replay"
    replay = _run_driver(replay_out, ckpt_dir, 1, "resume")
    assert replay.returncode == 0, replay.stderr
    assert (replay_out / "rewards.json").read_bytes() == baseline_rewards
    assert (replay_out / "decisions.jsonl").read_bytes() == baseline_decisions
    assert _scrubbed_metrics(replay_out) == baseline_metrics
