"""Fleet runner: equivalence with individual runs, and pairing."""

import numpy as np
import pytest

from repro.bandits import OptPolicy, RandomPolicy, UcbPolicy, make_policy
from repro.exceptions import ConfigurationError
from repro.simulation.fleet import run_policy_fleet
from repro.simulation.runner import run_policy


def test_fleet_matches_individual_runs_exactly(small_world):
    """Bit-for-bit equivalence with run_policy on the same seed."""
    fleet = run_policy_fleet(
        {
            "UCB": UcbPolicy(dim=4),
            "Random": RandomPolicy(seed=9),
            "OPT": OptPolicy(small_world.theta),
        },
        small_world,
        horizon=80,
        run_seed=5,
    )
    for name, policy in [
        ("UCB", UcbPolicy(dim=4)),
        ("Random", RandomPolicy(seed=9)),
        ("OPT", OptPolicy(small_world.theta)),
    ]:
        individual = run_policy(policy, small_world, horizon=80, run_seed=5)
        assert np.array_equal(fleet[name].rewards, individual.rewards), name
        assert np.array_equal(fleet[name].arranged, individual.arranged), name


def test_fleet_histories_carry_the_dict_names(small_world):
    fleet = run_policy_fleet(
        {"ucb-a1": UcbPolicy(dim=4, alpha=1.0), "ucb-a2": UcbPolicy(dim=4, alpha=2.0)},
        small_world,
        horizon=30,
    )
    assert fleet["ucb-a1"].policy_name == "ucb-a1"
    assert fleet["ucb-a2"].policy_name == "ucb-a2"


def test_fleet_kendall_tracking(small_world):
    fleet = run_policy_fleet(
        {"UCB": UcbPolicy(dim=4)},
        small_world,
        horizon=60,
        track_kendall=True,
        kendall_checkpoints=[20, 60],
    )
    history = fleet["UCB"]
    assert history.kendall_steps.tolist() == [20, 60]
    assert history.kendall_taus.shape == (2,)


def test_fleet_requires_policies(small_world):
    with pytest.raises(ConfigurationError):
        run_policy_fleet({}, small_world, horizon=10)


def test_fleet_capacities_evolve_independently(small_world):
    """OPT may exhaust an event that Random never touches."""
    fleet = run_policy_fleet(
        {"OPT": OptPolicy(small_world.theta), "Random": RandomPolicy(seed=0)},
        small_world,
        horizon=150,
    )
    # Both respected their own capacity accounting.
    assert fleet["OPT"].total_reward <= small_world.capacities.sum()
    assert fleet["Random"].total_reward <= small_world.capacities.sum()
    assert fleet["OPT"].total_reward != fleet["Random"].total_reward
