"""The EventCatalog secondary indexes."""

import numpy as np
import pytest

from repro.ebsn.catalog import EventCatalog
from repro.ebsn.events import Event
from repro.exceptions import ConfigurationError, UnknownEventError


def make_catalog():
    return EventCatalog(
        [
            Event(
                0,
                10,
                category="Music",
                subcategory="jazz",
                tags=("Music", "jazz"),
                attributes={"day_of_week": "Sat", "price_band": "0-49"},
            ),
            Event(
                1,
                5,
                category="Sports",
                subcategory="football",
                tags=("Sports", "football"),
                attributes={"day_of_week": "Sat"},
            ),
            Event(
                2,
                8,
                category="Music",
                subcategory="piano",
                tags=("Music", "piano"),
                attributes={"day_of_week": "Sun"},
            ),
        ]
    )


def test_catalog_validation():
    with pytest.raises(ConfigurationError):
        EventCatalog([])
    with pytest.raises(ConfigurationError):
        EventCatalog([Event(0, 1), Event(2, 1)])


def test_basic_access():
    catalog = make_catalog()
    assert len(catalog) == 3
    assert catalog[1].category == "Sports"
    with pytest.raises(UnknownEventError):
        catalog[9]


def test_category_and_subcategory_indexes():
    catalog = make_catalog()
    assert catalog.by_category("Music") == [0, 2]
    assert catalog.by_category("Sports") == [1]
    assert catalog.by_category("Theater") == []
    assert catalog.by_subcategory("piano") == [2]
    assert catalog.categories() == frozenset({"Music", "Sports"})


def test_tag_index_and_union_query():
    catalog = make_catalog()
    assert catalog.by_tag("jazz") == [0]
    assert catalog.matching_any_tag(["jazz", "football"]) == [0, 1]
    assert catalog.matching_any_tag([]) == []
    assert "piano" in catalog.tags()


def test_attribute_index():
    catalog = make_catalog()
    assert catalog.by_attribute("day_of_week", "Sat") == [0, 1]
    assert catalog.by_attribute("price_band", "0-49") == [0]
    assert catalog.by_attribute("nope", "x") == []


def test_filter_predicate():
    catalog = make_catalog()
    assert catalog.filter(lambda e: e.capacity > 6) == [0, 2]


def test_mask_for_builds_schedule_phases():
    catalog = make_catalog()
    mask = catalog.mask_for(catalog.by_category("Music"))
    assert mask.tolist() == [True, False, True]
    with pytest.raises(UnknownEventError):
        catalog.mask_for([7])


def test_category_histogram():
    assert make_catalog().category_histogram() == {"Music": 2, "Sports": 1}


def test_catalog_over_the_damai_events(damai):
    catalog = EventCatalog(damai.platform_events())
    histogram = catalog.category_histogram()
    assert sum(histogram.values()) == 50
    # Every indexed event is really in that category.
    for category, ids in histogram.items():
        for event_id in catalog.by_category(category):
            assert damai.events[event_id].category == category


def test_catalog_mask_plugs_into_dynamic_schedules(damai):
    from repro.extensions import DynamicEventSchedule

    catalog = EventCatalog(damai.platform_events())
    weekend = catalog.mask_for(
        catalog.by_attribute("day_of_week", "Sat")
        + catalog.by_attribute("day_of_week", "Sun")
    )
    rest = ~weekend
    if weekend.any() and rest.any():
        schedule = DynamicEventSchedule(masks=(weekend, rest), phase_length=10)
        assert schedule.num_events == 50
