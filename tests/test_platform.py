"""The platform façade: Definition 3's constraints are enforced."""

import pytest

from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.events import EventStore
from repro.ebsn.platform import Platform
from repro.ebsn.users import User
from repro.exceptions import CapacityError, ConflictError


@pytest.fixture
def platform(simple_store, simple_conflicts):
    return Platform(simple_store, simple_conflicts)


def test_platform_rejects_mismatched_sizes(simple_store):
    with pytest.raises(ConflictError):
        Platform(simple_store, ConflictGraph(3))


def test_commit_records_feedback_and_decrements_capacity(platform, simple_user):
    entry = platform.commit(simple_user, [0, 2], feedback=lambda e: e == 0)
    assert entry.accepted == (0,)
    assert entry.reward == 1
    # Only the accepted event consumed capacity (line 12 of Algorithm 1).
    assert platform.store.remaining(0) == 1
    assert platform.store.remaining(2) == 3
    assert platform.time_step == 1


def test_commit_rejects_conflicting_arrangement(platform, simple_user):
    with pytest.raises(ConflictError):
        platform.commit(simple_user, [0, 1], feedback=lambda e: True)


def test_commit_rejects_over_capacity_user(platform):
    user = User(user_id=0, capacity=1)
    with pytest.raises(CapacityError):
        platform.commit(user, [0, 2], feedback=lambda e: True)


def test_commit_rejects_full_events(platform, simple_user):
    platform.commit(simple_user, [1], feedback=lambda e: True)  # capacity 1 -> 0
    with pytest.raises(CapacityError):
        platform.commit(simple_user, [1], feedback=lambda e: True)


def test_commit_rejects_duplicate_events(platform, simple_user):
    with pytest.raises(ConflictError):
        platform.commit(simple_user, [0, 0], feedback=lambda e: True)


def test_empty_arrangement_is_legal(platform, simple_user):
    entry = platform.commit(simple_user, [], feedback=lambda e: True)
    assert entry.reward == 0
    assert platform.time_step == 1


def test_failed_commit_does_not_advance_time(platform, simple_user):
    with pytest.raises(ConflictError):
        platform.commit(simple_user, [0, 1], feedback=lambda e: True)
    assert platform.time_step == 0
    assert len(platform.ledger) == 0


def test_reset_restores_everything(platform, simple_user):
    platform.commit(simple_user, [0], feedback=lambda e: True)
    platform.reset()
    assert platform.time_step == 0
    assert len(platform.ledger) == 0
    assert platform.store.remaining(0) == 2
