"""Integration tests: the paper's qualitative findings at small scale.

These are the scientific checks — they run the full pipeline (world ->
policies -> environment -> metrics) and assert the *orderings* the
paper reports, with margins wide enough to be seed-robust.
"""

import numpy as np
import pytest

from repro.bandits import OptPolicy, make_policy
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.simulation.runner import run_policy


@pytest.fixture(scope="module")
def default_runs():
    """One medium run of every policy on the scaled default setting."""
    config = SyntheticConfig.scaled_default(seed=42).with_overrides(horizon=3000)
    world = build_world(config)
    histories = {
        "OPT": run_policy(OptPolicy(world.theta), world, run_seed=1)
    }
    for name in ("UCB", "TS", "eGreedy", "Exploit", "Random"):
        policy = make_policy(name, dim=config.dim, seed=7)
        histories[name] = run_policy(policy, world, run_seed=1)
    return world, histories


def test_opt_collects_the_most_reward(default_runs):
    _, runs = default_runs
    best = runs["OPT"].total_reward
    for name, history in runs.items():
        if name != "OPT":
            assert history.total_reward <= best * 1.02


def test_learning_policies_beat_random(default_runs):
    _, runs = default_runs
    floor = runs["Random"].total_reward
    for name in ("UCB", "TS", "eGreedy", "Exploit"):
        assert runs[name].total_reward > floor


def test_the_headline_finding_ts_performs_badly(default_runs):
    """TS only beats Random; UCB and Exploit are far ahead of TS."""
    _, runs = default_runs
    assert runs["UCB"].total_reward > 2 * runs["TS"].total_reward
    assert runs["Exploit"].total_reward > 2 * runs["TS"].total_reward
    assert runs["eGreedy"].total_reward > 2 * runs["TS"].total_reward


def test_ucb_and_exploit_are_near_opt(default_runs):
    _, runs = default_runs
    for name in ("UCB", "Exploit"):
        assert runs[name].total_reward > 0.9 * runs["OPT"].total_reward


def test_accept_ratios_increase_over_time_for_learners(default_runs):
    _, runs = default_runs
    for name in ("UCB", "Exploit", "eGreedy"):
        ratios = runs[name].accept_ratio_at([300, 3000])
        assert ratios[1] > ratios[0]


def test_random_accept_ratio_stays_flat(default_runs):
    _, runs = default_runs
    ratios = runs["Random"].accept_ratio_at([500, 3000])
    assert abs(ratios[1] - ratios[0]) < 0.05


def test_constraints_hold_throughout(default_runs):
    world, runs = default_runs
    for history in runs.values():
        assert history.arranged.max() <= world.config.user_capacity_max
        assert np.all(history.rewards <= history.arranged)


def test_capacity_exhaustion_plateaus_opt_rewards():
    """The regret-drop mechanism: OPT's cumulative reward saturates."""
    config = SyntheticConfig.scaled_default(seed=3).with_overrides(
        horizon=6000, capacity_mean=10.0, capacity_std=3.0
    )
    world = build_world(config)
    opt = run_policy(OptPolicy(world.theta), world, run_seed=0)
    cumulative = opt.cumulative_rewards()
    total_capacity = world.capacities.sum()
    assert cumulative[-1] <= total_capacity
    # The last stretch gains almost nothing: events are gone.
    assert cumulative[-1] - cumulative[-500] < 0.02 * cumulative[-1]


def test_regret_gap_narrows_after_exhaustion():
    config = SyntheticConfig.scaled_default(seed=3).with_overrides(
        horizon=6000, capacity_mean=10.0, capacity_std=3.0
    )
    world = build_world(config)
    opt = run_policy(OptPolicy(world.theta), world, run_seed=0)
    ucb = run_policy(make_policy("UCB", dim=20, seed=7), world, run_seed=0)
    regrets = opt.cumulative_rewards() - ucb.cumulative_rewards()
    peak = regrets.max()
    assert regrets[-1] < peak  # the paper's sudden drop


def test_common_random_numbers_make_regret_mostly_positive(default_runs):
    _, runs = default_runs
    regrets = (
        runs["OPT"].cumulative_rewards() - runs["Random"].cumulative_rewards()
    )
    assert np.all(regrets[50:] > 0)


def test_ts_improves_when_d_is_one():
    """Figure 4's effect: at d=1 TS becomes competitive."""
    config = SyntheticConfig.scaled_default(seed=5).with_overrides(
        horizon=3000, dim=1
    )
    world = build_world(config)
    opt = run_policy(OptPolicy(world.theta), world, run_seed=0)
    ts = run_policy(make_policy("TS", dim=1, seed=7), world, run_seed=0)
    random_run = run_policy(make_policy("Random", dim=1, seed=7), world, run_seed=0)
    ts_regret = opt.total_reward - ts.total_reward
    random_regret = opt.total_reward - random_run.total_reward
    assert ts_regret < 0.5 * random_regret
