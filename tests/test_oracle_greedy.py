"""Oracle-Greedy (Algorithm 2): feasibility, ordering, edge cases."""

import numpy as np
import pytest

from repro.ebsn.conflicts import ConflictGraph
from repro.exceptions import ConfigurationError
from repro.oracle.greedy import oracle_greedy


def graph(num_events, pairs=()):
    return ConflictGraph(num_events, pairs)


def test_picks_highest_scores_first():
    scores = np.array([0.1, 0.9, 0.5, 0.3])
    result = oracle_greedy(scores, graph(4), np.ones(4), user_capacity=2)
    assert result == [1, 2]


def test_respects_user_capacity():
    scores = np.array([3.0, 2.0, 1.0])
    result = oracle_greedy(scores, graph(3), np.ones(3), user_capacity=1)
    assert result == [0]


def test_skips_full_events():
    scores = np.array([3.0, 2.0, 1.0])
    capacities = np.array([0.0, 1.0, 1.0])
    result = oracle_greedy(scores, graph(3), capacities, user_capacity=2)
    assert result == [1, 2]


def test_skips_conflicting_events():
    scores = np.array([3.0, 2.0, 1.0])
    result = oracle_greedy(scores, graph(3, [(0, 1)]), np.ones(3), user_capacity=3)
    assert result == [0, 2]


def test_includes_non_positive_scores_when_room_remains():
    """The paper keeps hat-r <= 0 events: their true reward may be positive."""
    scores = np.array([-0.5, -1.0])
    result = oracle_greedy(scores, graph(2), np.ones(2), user_capacity=2)
    assert result == [0, 1]


def test_deterministic_tie_break_by_event_id():
    scores = np.array([0.5, 0.5, 0.5])
    result = oracle_greedy(scores, graph(3), np.ones(3), user_capacity=2)
    assert result == [0, 1]


def test_explicit_order_overrides_scores():
    scores = np.array([9.0, 1.0, 5.0])
    result = oracle_greedy(
        scores, graph(3), np.ones(3), user_capacity=2, order=[2, 1, 0]
    )
    assert result == [2, 1]


def test_explicit_order_must_be_a_permutation():
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones(3), graph(3), np.ones(3), 1, order=[0, 0, 1])


def test_input_validation():
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones(3), graph(3), np.ones(2), 1)
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones((2, 2)), graph(4), np.ones((2, 2)), 1)
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones(2), graph(3), np.ones(2), 1)
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones(3), graph(3), np.ones(3), 0)


def test_all_conflicting_yields_single_event():
    """cr = 1: only one event can ever be arranged per round."""
    pairs = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    scores = np.array([1.0, 5.0, 3.0, 2.0, 4.0])
    result = oracle_greedy(scores, graph(5, pairs), np.ones(5), user_capacity=5)
    assert result == [1]


def test_no_available_events_yields_empty():
    result = oracle_greedy(np.ones(3), graph(3), np.zeros(3), user_capacity=2)
    assert result == []


# ----------------------------------------------------------------------
# Top-k prefix scan ≡ full stable sort
# ----------------------------------------------------------------------
def reference_oracle_greedy(scores, conflicts, remaining, user_capacity):
    """The pre-optimisation implementation: full stable sort + scan."""
    visit_order = np.argsort(-np.asarray(scores, dtype=float), kind="stable")
    arrangement = []
    blocked = np.zeros(len(scores), dtype=bool)
    for event_id in visit_order.tolist():
        if len(arrangement) >= user_capacity:
            break
        if remaining[event_id] <= 0 or blocked[event_id]:
            continue
        arrangement.append(int(event_id))
        blocked |= conflicts.neighbor_mask(event_id)
    return arrangement


def patch_gate(monkeypatch):
    """Force the prefix path on small instances (the production gate
    only engages it at >= _PREFIX_MIN_EVENTS events)."""
    import repro.oracle.greedy as greedy_module

    monkeypatch.setattr(greedy_module, "_PREFIX_MIN_EVENTS", 0)


def test_topk_matches_full_sort_with_ties_at_the_cutoff(monkeypatch):
    """Many events tied exactly at the argpartition cutoff value."""
    patch_gate(monkeypatch)
    n = 100
    scores = np.zeros(n)
    scores[:5] = 2.0       # clear winners
    scores[5:60] = 1.0     # a huge tied band straddling any prefix cutoff
    result = oracle_greedy(scores, graph(n), np.ones(n), user_capacity=3)
    assert result == reference_oracle_greedy(scores, graph(n), np.ones(n), 3)
    assert result == [0, 1, 2]


def test_topk_falls_back_when_conflicts_exhaust_the_prefix(monkeypatch):
    """A clique over the whole prefix forces the full-sort continuation."""
    patch_gate(monkeypatch)
    n = 80
    user_capacity = 2
    prefix = max(4 * user_capacity, 16)
    scores = np.linspace(1.0, 2.0, n)  # descending order = ids n-1, n-2, ...
    top_ids = list(range(n - prefix, n))
    pairs = [(i, j) for i in top_ids for j in top_ids if i < j]
    g = graph(n, pairs)
    result = oracle_greedy(scores, g, np.ones(n), user_capacity=user_capacity)
    expected = reference_oracle_greedy(scores, g, np.ones(n), user_capacity)
    assert result == expected
    # One event from the clique, then the best event outside it.
    assert result == [n - 1, n - prefix - 1]


def test_topk_falls_back_when_capacities_exhaust_the_prefix(monkeypatch):
    patch_gate(monkeypatch)
    n = 60
    scores = np.arange(n, dtype=float)
    remaining = np.ones(n)
    remaining[-30:] = 0.0  # the whole top half is full
    result = oracle_greedy(scores, graph(n), remaining, user_capacity=4)
    expected = reference_oracle_greedy(scores, graph(n), remaining, 4)
    assert result == expected == [29, 28, 27, 26]


@pytest.mark.parametrize("trial", range(25))
def test_topk_matches_full_sort_on_adversarial_random_instances(trial, monkeypatch):
    """Randomised duels: discretised scores (heavy ties), dense conflicts,
    random zero capacities, capacities occasionally exceeding |V|."""
    patch_gate(monkeypatch)
    rng = np.random.default_rng(trial)
    n = int(rng.integers(2, 120))
    # Coarse discretisation forces ties everywhere, including at the cutoff.
    scores = rng.integers(0, 4, size=n).astype(float) / 2.0
    remaining = rng.integers(0, 2, size=n).astype(float) * rng.integers(
        1, 4, size=n
    )
    density = float(rng.uniform(0.0, 0.6))
    pairs = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.uniform() < density
    ]
    g = graph(n, pairs)
    user_capacity = int(rng.integers(1, n + 2))
    result = oracle_greedy(scores, g, remaining, user_capacity)
    assert result == reference_oracle_greedy(scores, g, remaining, user_capacity)
