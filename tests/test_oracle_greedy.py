"""Oracle-Greedy (Algorithm 2): feasibility, ordering, edge cases."""

import numpy as np
import pytest

from repro.ebsn.conflicts import ConflictGraph
from repro.exceptions import ConfigurationError
from repro.oracle.greedy import oracle_greedy


def graph(num_events, pairs=()):
    return ConflictGraph(num_events, pairs)


def test_picks_highest_scores_first():
    scores = np.array([0.1, 0.9, 0.5, 0.3])
    result = oracle_greedy(scores, graph(4), np.ones(4), user_capacity=2)
    assert result == [1, 2]


def test_respects_user_capacity():
    scores = np.array([3.0, 2.0, 1.0])
    result = oracle_greedy(scores, graph(3), np.ones(3), user_capacity=1)
    assert result == [0]


def test_skips_full_events():
    scores = np.array([3.0, 2.0, 1.0])
    capacities = np.array([0.0, 1.0, 1.0])
    result = oracle_greedy(scores, graph(3), capacities, user_capacity=2)
    assert result == [1, 2]


def test_skips_conflicting_events():
    scores = np.array([3.0, 2.0, 1.0])
    result = oracle_greedy(scores, graph(3, [(0, 1)]), np.ones(3), user_capacity=3)
    assert result == [0, 2]


def test_includes_non_positive_scores_when_room_remains():
    """The paper keeps hat-r <= 0 events: their true reward may be positive."""
    scores = np.array([-0.5, -1.0])
    result = oracle_greedy(scores, graph(2), np.ones(2), user_capacity=2)
    assert result == [0, 1]


def test_deterministic_tie_break_by_event_id():
    scores = np.array([0.5, 0.5, 0.5])
    result = oracle_greedy(scores, graph(3), np.ones(3), user_capacity=2)
    assert result == [0, 1]


def test_explicit_order_overrides_scores():
    scores = np.array([9.0, 1.0, 5.0])
    result = oracle_greedy(
        scores, graph(3), np.ones(3), user_capacity=2, order=[2, 1, 0]
    )
    assert result == [2, 1]


def test_explicit_order_must_be_a_permutation():
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones(3), graph(3), np.ones(3), 1, order=[0, 0, 1])


def test_input_validation():
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones(3), graph(3), np.ones(2), 1)
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones((2, 2)), graph(4), np.ones((2, 2)), 1)
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones(2), graph(3), np.ones(2), 1)
    with pytest.raises(ConfigurationError):
        oracle_greedy(np.ones(3), graph(3), np.ones(3), 0)


def test_all_conflicting_yields_single_event():
    """cr = 1: only one event can ever be arranged per round."""
    pairs = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    scores = np.array([1.0, 5.0, 3.0, 2.0, 4.0])
    result = oracle_greedy(scores, graph(5, pairs), np.ones(5), user_capacity=5)
    assert result == [1]


def test_no_available_events_yields_empty():
    result = oracle_greedy(np.ones(3), graph(3), np.zeros(3), user_capacity=2)
    assert result == []
