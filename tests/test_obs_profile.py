"""Deterministic sampling profiler: aggregation math, formats, wiring.

The profiler samples on a *round-indexed* grid (``t % N == 0``), never
on a wall-clock timer, so the set of sampled stacks is a pure function
of the seed — and arrangements/rewards are bit-identical with
``--profile`` on or off.  These tests pin the self/cumulative-time
arithmetic on synthetic traces, the folded/JSON serialisations, the
runner + fleet span shapes, and the worker-merge equivalence.
"""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SchemaError
from repro.obs.core import Instrumentation
from repro.obs.profile import (
    DEFAULT_SAMPLE_EVERY,
    PROFILE_SCHEMA_VERSION,
    Profile,
    ProfileConfig,
    StackStat,
    load_profile,
    write_profile,
)


def _span(span_id, name, duration_ns, parent_id=None):
    record = {
        "kind": "span",
        "span_id": span_id,
        "name": name,
        "duration_ns": duration_ns,
    }
    if parent_id is not None:
        record["parent_id"] = parent_id
    return record


#: root(1000ns) -> a(600ns) -> b(250ns); a second leaf c(100ns) under root.
SYNTHETIC = [
    _span(1, "root", 1000),
    _span(2, "a", 600, parent_id=1),
    _span(3, "b", 250, parent_id=2),
    _span(4, "c", 100, parent_id=1),
    {"kind": "event", "name": "noise"},  # events are ignored
]


# ----------------------------------------------------------------------
# Sampling grid
# ----------------------------------------------------------------------
def test_profile_config_grid_and_validation():
    config = ProfileConfig(sample_every=4)
    assert [t for t in range(12) if config.samples(t)] == [0, 4, 8]
    assert ProfileConfig().sample_every == DEFAULT_SAMPLE_EVERY
    with pytest.raises(ConfigurationError, match="sample_every"):
        ProfileConfig(sample_every=0)


# ----------------------------------------------------------------------
# Aggregation arithmetic
# ----------------------------------------------------------------------
def test_self_time_is_duration_minus_direct_children():
    profile = Profile.from_trace_records(SYNTHETIC)
    assert profile.stacks[("root",)].self_ns == 1000 - 600 - 100
    assert profile.stacks[("root", "a")].self_ns == 600 - 250
    assert profile.stacks[("root", "a", "b")].self_ns == 250
    assert profile.stacks[("root", "c")].self_ns == 100
    assert profile.stacks[("root",)].cumulative_ns == 1000
    # Total self time == the root's wall time: nothing counted twice.
    assert profile.total_ns == 1000


def test_self_time_clamps_against_clock_jitter():
    # A child measured *longer* than its parent (clock jitter) must not
    # produce negative self time.
    records = [_span(1, "p", 100), _span(2, "q", 130, parent_id=1)]
    profile = Profile.from_trace_records(records)
    assert profile.stacks[("p",)].self_ns == 0
    assert profile.stacks[("p", "q")].self_ns == 130


def test_orphan_spans_root_their_own_stack():
    # A parent_id missing from the record set (worker root, truncated
    # stream prefix) degrades to a top-level frame, not a crash.
    records = [_span(7, "lost_child", 50, parent_id=999)]
    profile = Profile.from_trace_records(records)
    assert profile.stacks == {("lost_child",): StackStat(1, 50, 50)}


def test_repeated_stacks_aggregate_counts_and_times():
    records = [
        _span(1, "r", 100),
        _span(2, "x", 40, parent_id=1),
        _span(3, "x", 60, parent_id=1),
    ]
    profile = Profile.from_trace_records(records)
    stat = profile.stacks[("r", "x")]
    assert (stat.count, stat.cumulative_ns, stat.self_ns) == (2, 100, 100)


# ----------------------------------------------------------------------
# Views
# ----------------------------------------------------------------------
def test_folded_lines_are_flamegraph_compatible():
    profile = Profile.from_trace_records(SYNTHETIC)
    lines = profile.folded_lines()
    assert "root;a;b 0" not in lines  # sub-microsecond stacks dropped
    # 250ns floors to 0µs, so scale up for the format check.
    big = Profile()
    big.stacks[("r", "with;semicolon")] = StackStat(1, 5_000_000, 5_000_000)
    big.stacks[("r",)] = StackStat(1, 9_000_000, 4_000_000)
    lines = big.folded_lines()
    assert lines == ["r 4000", "r;with,semicolon 5000"]


def test_table_rows_order_hottest_first():
    profile = Profile()
    profile.stacks[("cold",)] = StackStat(1, 1_000_000, 1_000_000)
    profile.stacks[("hot",)] = StackStat(2, 9_000_000, 9_000_000)
    rows = profile.table_rows()
    assert [row[0] for row in rows] == ["hot", "cold"]
    assert rows[0][1] == "2"  # calls
    assert rows[0][4] == "90.0%"


def test_merge_is_stackwise_addition():
    left = Profile.from_trace_records(SYNTHETIC)
    right = Profile.from_trace_records(SYNTHETIC)
    merged = left.merge(right)
    assert merged is left
    assert merged.stacks[("root",)].count == 2
    assert merged.stacks[("root",)].cumulative_ns == 2000


# ----------------------------------------------------------------------
# Serialisation + artefact IO
# ----------------------------------------------------------------------
def test_json_roundtrip_preserves_every_stack():
    profile = Profile.from_trace_records(SYNTHETIC)
    text = profile.to_json()
    assert text.endswith("\n")
    payload = json.loads(text)
    assert payload["version"] == PROFILE_SCHEMA_VERSION
    assert payload["total_self_ns"] == 1000
    assert Profile.from_json(text).stacks == profile.stacks


def test_unknown_schema_versions_raise():
    with pytest.raises(SchemaError, match="version 2"):
        Profile.from_dict({"version": 2, "stacks": []})
    with pytest.raises(SchemaError, match="not an integer"):
        Profile.from_dict({"version": "fancy", "stacks": []})


def test_write_profile_emits_json_and_folded(tmp_path):
    profile = Profile()
    profile.stacks[("run", "select")] = StackStat(3, 2_000_000, 2_000_000)
    paths = write_profile(tmp_path, profile)
    assert paths["profile"].name == "profile.json"
    assert paths["folded"].read_text() == "run;select 2000\n"
    assert load_profile(tmp_path).stacks == profile.stacks


def test_load_profile_rebuilds_from_a_bare_trace(tmp_path):
    from repro.obs.trace import write_trace_jsonl

    write_trace_jsonl(SYNTHETIC, tmp_path / "trace.jsonl")
    profile = load_profile(tmp_path)  # no profile.json in the directory
    assert profile.stacks[("root", "a", "b")].self_ns == 250
    with pytest.raises(ConfigurationError, match="no profile or trace"):
        load_profile(tmp_path / "elsewhere")


# ----------------------------------------------------------------------
# Runner + fleet wiring
# ----------------------------------------------------------------------
def _profiled_run(world, sample_every=8, run_seed=4):
    from repro.bandits import UcbPolicy

    from repro.simulation.runner import run_policy

    obs = Instrumentation()
    history = run_policy(
        UcbPolicy(dim=world.config.dim),
        world,
        run_seed=run_seed,
        obs=obs,
        profile=ProfileConfig(sample_every=sample_every),
    )
    return history, obs


def test_profiled_rewards_are_bit_identical(small_world):
    from repro.bandits import UcbPolicy
    from repro.simulation.runner import run_policy

    plain = run_policy(
        UcbPolicy(dim=small_world.config.dim), small_world, run_seed=4
    )
    profiled, _ = _profiled_run(small_world)
    np.testing.assert_array_equal(plain.rewards, profiled.rewards)
    np.testing.assert_array_equal(plain.arranged, profiled.arranged)


def test_round_spans_land_exactly_on_the_sampling_grid(small_world):
    history, obs = _profiled_run(small_world, sample_every=8)
    rounds = [
        r
        for r in obs.trace_records()
        if r.get("kind") == "span" and r.get("name") == "round"
    ]
    expected = [t for t in range(1, history.horizon + 1) if t % 8 == 0]
    assert [r["attrs"]["t"] for r in rounds] == expected


def test_runner_profile_has_the_documented_phase_stacks(small_world):
    _, obs = _profiled_run(small_world)
    profile = Profile.from_trace_records(obs.trace_records())
    stacks = set(profile.stacks)
    for phase in ("select", "commit", "observe"):
        assert ("run_policy", "round", phase) in stacks


def test_fleet_profile_attributes_phases_per_policy(small_world):
    from repro.bandits import RandomPolicy, UcbPolicy
    from repro.simulation.fleet import run_policy_fleet

    obs = Instrumentation()
    dim = small_world.config.dim
    run_policy_fleet(
        {"UCB": UcbPolicy(dim=dim), "Random": RandomPolicy(seed=0)},
        small_world,
        run_seed=1,
        obs=obs,
        profile=ProfileConfig(sample_every=16),
    )
    stacks = set(Profile.from_trace_records(obs.trace_records()).stacks)
    step_leaves = {stack[-1] for stack in stacks if stack[-1].startswith("step:")}
    assert step_leaves == {"step:UCB", "step:Random"}


def test_merged_worker_traces_equal_merged_profiles(small_world):
    # Profile(merge_trace(w1, w2)) == Profile(w1).merge(Profile(w2)):
    # the span-id remapping in merge_trace preserves every stack.
    parent = Instrumentation()
    workers = []
    for seed in (1, 2):
        worker = Instrumentation()
        _ = _profiled_run(small_world, run_seed=seed)[1]  # warm check only
        with worker.span("worker", seed=seed):
            with worker.span("select"):
                pass
        workers.append(worker)
        parent.merge_trace(worker.trace_records())
    combined = Profile.from_trace_records(parent.trace_records())
    stepwise = Profile()
    for worker in workers:
        stepwise.merge(Profile.from_trace_records(worker.trace_records()))
    assert set(combined.stacks) == set(stepwise.stacks)
    for stack, stat in combined.stacks.items():
        assert stat.count == stepwise.stacks[stack].count


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
@pytest.fixture()
def profiled_dir(tmp_path, small_world):
    _, obs = _profiled_run(small_world)
    write_profile(tmp_path, Profile.from_trace_records(obs.trace_records()))
    return tmp_path


def test_cli_obs_profile_table(profiled_dir, capsys):
    from repro.cli import main as cli_main

    assert cli_main(["obs", "profile", str(profiled_dir)]) == 0
    out = capsys.readouterr().out
    assert "stack" in out and "self_ms" in out
    assert "run_policy" in out


def test_cli_obs_profile_folded(profiled_dir, capsys):
    from repro.cli import main as cli_main

    assert cli_main(["obs", "profile", str(profiled_dir), "--folded"]) == 0
    out = capsys.readouterr().out
    for line in filter(None, out.splitlines()):
        frames, weight = line.rsplit(" ", 1)
        assert frames and int(weight) > 0


def test_cli_quickstart_profile_writes_artifacts(tmp_path, capsys):
    from repro.cli import main as cli_main

    code = cli_main(
        ["quickstart", "--quiet", "--out", str(tmp_path), "--profile", "8"]
    )
    assert code == 0
    capsys.readouterr()
    assert (tmp_path / "profile.json").is_file()
    assert (tmp_path / "profile.folded").is_file()
    profile = load_profile(tmp_path)
    assert any("round" in stack for stack in profile.stacks)
