"""User records and arrival streams."""

import pytest

from repro.ebsn.users import FixedUserStream, RosterUserStream, User, UserArrivalStream
from repro.exceptions import ConfigurationError


def test_user_capacity_must_be_positive():
    with pytest.raises(ConfigurationError):
        User(user_id=0, capacity=0)


def test_stream_draws_capacities_in_range():
    stream = UserArrivalStream(min_capacity=1, max_capacity=5, seed=0)
    users = list(stream.take(200))
    assert all(1 <= u.capacity <= 5 for u in users)
    assert {u.capacity for u in users} == {1, 2, 3, 4, 5}


def test_stream_assigns_increasing_user_ids():
    stream = UserArrivalStream(seed=0)
    ids = [stream.next_user().user_id for _ in range(5)]
    assert ids == [0, 1, 2, 3, 4]


def test_stream_is_deterministic_in_seed():
    a = [u.capacity for u in UserArrivalStream(seed=9).take(20)]
    b = [u.capacity for u in UserArrivalStream(seed=9).take(20)]
    assert a == b


def test_stream_validation():
    with pytest.raises(ConfigurationError):
        UserArrivalStream(min_capacity=0)
    with pytest.raises(ConfigurationError):
        UserArrivalStream(min_capacity=3, max_capacity=2)


def test_fixed_stream_repeats_the_same_user():
    user = User(user_id=7, capacity=3)
    stream = FixedUserStream(user)
    assert [stream.next_user().user_id for _ in range(3)] == [7, 7, 7]


def test_roster_stream_cycles_in_order():
    roster = [User(user_id=i, capacity=1) for i in range(3)]
    stream = RosterUserStream(roster)
    ids = [stream.next_user().user_id for _ in range(7)]
    assert ids == [0, 1, 2, 0, 1, 2, 0]


def test_roster_stream_requires_users():
    with pytest.raises(ConfigurationError):
        RosterUserStream([])
