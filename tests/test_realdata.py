"""The real-dataset replay loop and Full Knowledge reference."""

import numpy as np
import pytest

from repro.bandits import ExploitPolicy, RandomPolicy, UcbPolicy
from repro.exceptions import ConfigurationError
from repro.simulation.realdata import (
    full_knowledge_accept_ratio,
    full_knowledge_count,
    full_knowledge_history,
    resolve_capacity,
    run_real_policy,
)


def test_resolve_capacity(damai):
    user = damai.users[0]
    assert resolve_capacity(user, 5) == 5
    assert resolve_capacity(user, "full") == user.yes_count
    with pytest.raises(ConfigurationError):
        resolve_capacity(user, 0)


def test_full_knowledge_is_bounded_by_capacity_and_yes_count(damai):
    for user in damai.users:
        for mode in (5, "full"):
            capacity = resolve_capacity(user, mode)
            count = full_knowledge_count(damai, user, capacity)
            assert 0 <= count <= min(capacity, user.yes_count)


def test_full_knowledge_arrangement_is_conflict_limited(damai):
    """For c_u = full, the ratio is below 1 exactly when Yes-events conflict."""
    for user in damai.users:
        ratio = full_knowledge_accept_ratio(damai, user, "full")
        yes = sorted(user.yes_events)
        if damai.conflicts.is_independent(yes):
            assert ratio == pytest.approx(1.0)
        else:
            assert ratio < 1.0


def test_full_knowledge_history_is_constant(damai):
    user = damai.users[0]
    history = full_knowledge_history(damai, user, 5, horizon=10)
    assert history.horizon == 10
    assert np.all(history.rewards == history.rewards[0])
    assert np.all(history.arranged == 5)


def test_replay_shows_identical_contexts_each_round(damai):
    """Policies receive the same matrix every round (by construction)."""
    user = damai.users[2]
    seen = []

    class Probe(RandomPolicy):
        def select(self, view):
            seen.append(view.contexts)
            return super().select(view)

    run_real_policy(Probe(seed=0), damai, user, 5, horizon=3)
    assert np.allclose(seen[0], seen[1])
    assert np.allclose(seen[1], seen[2])


def test_replay_feedback_is_deterministic(damai):
    user = damai.users[1]
    a = run_real_policy(UcbPolicy(dim=20), damai, user, 5, horizon=50)
    b = run_real_policy(UcbPolicy(dim=20), damai, user, 5, horizon=50)
    assert np.allclose(a.rewards, b.rewards)


def test_ucb_approaches_full_knowledge(damai):
    user = damai.users[1]
    history = run_real_policy(UcbPolicy(dim=20), damai, user, 5, horizon=800)
    ceiling = full_knowledge_accept_ratio(damai, user, 5)
    late_ratio = history.rewards[-100:].mean() / history.arranged[-100:].mean()
    assert late_ratio > 0.8 * ceiling


def test_exploit_can_lock_onto_all_reject(damai):
    """The Table 7 pathology: some user makes Exploit score 0 forever."""
    ratios = [
        run_real_policy(
            ExploitPolicy(dim=20), damai, user, 5, horizon=100
        ).overall_accept_ratio
        for user in damai.users
    ]
    assert any(r == 0.0 for r in ratios)
    assert any(r > 0.5 for r in ratios)


def test_replay_validates_horizon(damai):
    with pytest.raises(ConfigurationError):
        run_real_policy(RandomPolicy(seed=0), damai, damai.users[0], 5, horizon=0)
