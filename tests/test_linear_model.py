"""The shared LinearModel: prediction, widths, update rule."""

import numpy as np
import pytest

from repro.bandits.linear import LinearModel
from repro.exceptions import ConfigurationError


def test_prior_predicts_zero():
    model = LinearModel(dim=3)
    assert np.allclose(model.predict(np.eye(3)), np.zeros(3))


def test_observe_only_uses_arranged_rows():
    model = LinearModel(dim=2)
    contexts = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    model.observe(contexts, arranged=[1], rewards=[1.0])
    # Only row 1 entered the statistics: theta_hat points along e2.
    theta = model.theta_hat()
    assert theta[1] > 0
    assert theta[0] == pytest.approx(0.0)


def test_observe_validates_lengths():
    model = LinearModel(dim=2)
    with pytest.raises(ConfigurationError):
        model.observe(np.ones((3, 2)), arranged=[0, 1], rewards=[1.0])


def test_observe_with_empty_arrangement_is_a_noop():
    model = LinearModel(dim=2)
    model.observe(np.ones((3, 2)), arranged=[], rewards=[])
    assert model.state.num_observations == 0


def test_predict_validates_dimension():
    model = LinearModel(dim=2)
    with pytest.raises(ConfigurationError):
        model.predict(np.ones((2, 3)))


def test_learns_true_theta_from_noiseless_feedback():
    true_theta = np.array([0.6, -0.2, 0.4])
    rng = np.random.default_rng(0)
    model = LinearModel(dim=3, lam=1e-6)
    for _ in range(100):
        contexts = rng.normal(size=(4, 3))
        model.observe(contexts, [0, 1, 2, 3], (contexts @ true_theta).tolist())
    assert np.allclose(model.theta_hat(), true_theta, atol=1e-4)


def test_posterior_returns_mean_and_inverse():
    model = LinearModel(dim=2, lam=2.0)
    mean, y_inv = model.posterior()
    assert np.allclose(mean, np.zeros(2))
    assert np.allclose(y_inv, np.eye(2) / 2.0)


def test_reset_forgets_observations():
    model = LinearModel(dim=2)
    model.observe(np.ones((1, 2)), [0], [1.0])
    model.reset()
    assert np.allclose(model.theta_hat(), np.zeros(2))
