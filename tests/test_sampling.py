"""RNG helpers and Cholesky Gaussian sampling."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.linalg.sampling import cholesky_sample, make_rng, spawn_rng


def test_make_rng_is_deterministic_for_integer_seeds():
    a = make_rng(7).uniform(size=5)
    b = make_rng(7).uniform(size=5)
    assert np.allclose(a, b)


def test_make_rng_passes_generators_through():
    generator = np.random.default_rng(0)
    assert make_rng(generator) is generator


def test_spawn_rng_children_are_independent_per_key():
    parent = make_rng(0)
    child_a = spawn_rng(parent, 1)
    parent2 = make_rng(0)
    child_b = spawn_rng(parent2, 2)
    assert not np.allclose(child_a.uniform(size=8), child_b.uniform(size=8))


def test_spawn_rng_same_key_same_stream():
    child_a = spawn_rng(make_rng(0), 5)
    child_b = spawn_rng(make_rng(0), 5)
    assert np.allclose(child_a.uniform(size=8), child_b.uniform(size=8))


def test_cholesky_sample_mean_and_covariance():
    mean = np.array([1.0, -2.0])
    covariance = np.array([[2.0, 0.5], [0.5, 1.0]])
    rng = make_rng(3)
    draws = np.vstack(
        [cholesky_sample(mean, covariance, rng) for _ in range(4000)]
    )
    assert np.allclose(draws.mean(axis=0), mean, atol=0.1)
    assert np.allclose(np.cov(draws.T), covariance, atol=0.15)


def test_cholesky_sample_handles_near_singular_covariance():
    mean = np.zeros(3)
    rank_one = np.outer(np.ones(3), np.ones(3))  # singular PSD
    sample = cholesky_sample(mean, rank_one, make_rng(0))
    assert sample.shape == (3,)
    assert np.all(np.isfinite(sample))


def test_cholesky_sample_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        cholesky_sample(np.zeros((2, 2)), np.eye(2), make_rng(0))
    with pytest.raises(ConfigurationError):
        cholesky_sample(np.zeros(2), np.eye(3), make_rng(0))


def test_cholesky_sample_rejects_indefinite_covariance():
    indefinite = np.array([[1.0, 0.0], [0.0, -5.0]])
    with pytest.raises(ConfigurationError):
        cholesky_sample(np.zeros(2), indefinite, make_rng(0))


def test_cholesky_sample_zero_covariance_returns_mean():
    mean = np.array([0.3, 0.7])
    sample = cholesky_sample(mean, np.zeros((2, 2)), make_rng(0))
    assert np.allclose(sample, mean, atol=1e-4)
