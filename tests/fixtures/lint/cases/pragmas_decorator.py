"""A pragma on a decorator line must cover the decorated definition.

The violation (FAS004 mutable default) is reported on the ``def`` line,
but the only place a reader can hang the pragma is the decorator above
it — the engine carries decorator-line pragmas down to the definition.
"""

import functools


def tagged(func):
    return func


@tagged  # fasealint: disable=FAS004
def suppressed_lookup(key, bucket={}):
    bucket[key] = True
    return bucket


@functools.wraps(tagged)  # fasealint: disable=FAS004
def suppressed_wrapped(key, bucket={}):
    bucket[key] = True
    return bucket


@tagged
def uncovered_lookup(key, bucket={}):
    bucket[key] = True
    return bucket
