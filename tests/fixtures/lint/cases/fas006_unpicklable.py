"""Fixture: non-picklable parallel work units (FAS006)."""

import functools

from repro.parallel import run_work_units


def module_level_unit(value):
    return value * 2


def fan_out_bad(units):
    results = run_work_units(lambda unit: unit + 1, units)  # FAS006: lambda

    def local_unit(value):
        return value - 1

    results += run_work_units(local_unit, units)  # FAS006: nested def
    results += run_work_units(
        functools.partial(module_level_unit, 3), units  # FAS006: partial
    )
    return results


def fan_out_ok(units, jobs=None):
    return run_work_units(module_level_unit, units, jobs=jobs)
