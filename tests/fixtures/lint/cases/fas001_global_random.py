"""Fixture: global RNG calls that FAS001 must flag."""

import random

import numpy as np
from numpy.random import default_rng
from random import shuffle


def draw_bad():
    a = np.random.rand(3)          # FAS001: global numpy draw
    np.random.seed(0)              # FAS001: global reseed
    b = random.random()            # FAS001: stdlib global draw
    shuffle([1, 2, 3])             # FAS001: from-imported global draw
    return a, b


def draw_ok(seed):
    rng = default_rng(seed)        # allowed: constructs a Generator
    keyed = np.random.SeedSequence(entropy=seed)  # allowed: seeding plumbing
    local = random.Random(seed)    # allowed: independent instance
    return rng.random(), keyed, local.random()
