"""Fixture: randomness without an explicit rng/seed path (FAS002)."""

from numpy.random import default_rng

from repro.linalg.sampling import make_rng


def sample_hidden():
    rng = make_rng(42)  # FAS002: public fn, no rng/seed param or source
    return rng.random()


def sample_unseeded(rng=None):
    fresh = default_rng()  # FAS002: factory with no seed at all
    return fresh.random()


def sample_ok(seed=0):
    return make_rng(seed).random()


def _private_helper():
    return make_rng(7).random()  # private: not checked


class Sampler:
    def __init__(self, seed):
        self._rng = make_rng(seed)  # ok: seed parameter

    def refresh(self):
        self._rng = make_rng(self._seed)  # ok: seed-like attribute
