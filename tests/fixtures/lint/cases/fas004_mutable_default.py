"""Fixture: mutable default arguments (FAS004)."""


def accumulate(item, bucket=[]):  # FAS004
    bucket.append(item)
    return bucket


def tally(key, *, counts={}):  # FAS004 (kw-only)
    counts[key] = counts.get(key, 0) + 1
    return counts


def build(sink=list()):  # FAS004 (constructor call)
    return sink


def fine(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket
