"""Fixture: float equality comparisons (FAS003)."""


def check(values, ratio):
    exact_zero = sum(v == 0.0 for v in values)     # FAS003
    if ratio != 1.0:                               # FAS003
        return exact_zero
    if float(ratio) == float(len(values)):         # FAS003 (float casts)
        return -1
    return 0


def check_ok(count, values):
    if count == 0:  # int comparison: fine
        return []
    return [v for v in values if v > 0.5]  # ordering: fine
