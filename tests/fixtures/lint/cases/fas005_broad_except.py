"""Fixture: bare / swallowed broad excepts (FAS005)."""


def swallow_everything(fn):
    try:
        return fn()
    except:  # FAS005: bare
        return None


def swallow_exception(fn):
    try:
        return fn()
    except Exception:  # FAS005: broad, no re-raise
        return None


def annotate_and_reraise(fn):
    try:
        return fn()
    except Exception as error:  # ok: broad but re-raises
        error.args = (f"wrapped: {error}",)
        raise


def targeted(fn):
    try:
        return fn()
    except ValueError:  # ok: specific
        return None
