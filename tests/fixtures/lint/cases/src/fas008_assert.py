"""Fixture: asserts in production code (FAS008)."""


def check_capacity(capacity):
    assert capacity > 0, "capacity must be positive"  # FAS008
    return capacity


def check_dim(dim):
    assert isinstance(dim, int)  # FAS008 (no message)
    return dim


def guarded(capacity):
    if capacity <= 0:
        raise ValueError("capacity must be positive")  # ok: real exception
    return capacity
