"""FAS015 fixture: schema versions must be module-level constants."""

import json

GOOD_SCHEMA_VERSION = 2


def write_good(payload):
    # Named constant: the reader's compatibility check imports the same name.
    return json.dumps({"version": GOOD_SCHEMA_VERSION, "payload": payload})


def write_bad(payload):
    return json.dumps({"schema_version": 1, "payload": payload})


def write_bad_header():
    return {"kind": "header", "version": "3"}
