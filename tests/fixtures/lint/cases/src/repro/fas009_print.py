"""FAS009 fixture: library modules must not print.

Chrome belongs to repro.obs.console.Console; telemetry to repro.obs.
"""


def report_progress(step):
    print(f"step {step}")  # -> FAS009


def debug_dump(values):
    for value in values:
        print(value)  # -> FAS009


def chatty_helper():
    message = "done"
    print(message)  # -> FAS009
    return message
