"""FAS016 fixture: metric names must be module-level constants."""

GOOD_METRIC = "env.rounds"
GOOD_SUFFIX = ".calls"


class Emitter:
    def obs_name(self, metric):
        return "policy.X." + metric

    def record(self, obs, kind):
        # Named constant and constant concatenation: consumers import
        # the same names, so both pass.
        obs.counter(GOOD_METRIC).inc()
        obs.counter(GOOD_METRIC + GOOD_SUFFIX).inc()
        obs.counter("env.commits").inc()
        obs.series(self.obs_name("explored")).append(1, 0.0)
        obs.gauge(name="peak_bytes").set(1.0)
        obs.timer(f"{kind}_seconds").observe(0.1)
