"""Fixture: linalg shape-contract violations (FAS007)."""

import numpy as np
import numpy.typing as npt


def solve(y, b):  # FAS007: no annotations, no docstring
    return np.linalg.solve(y, b)


def widths(contexts: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    """Compute confidence widths."""  # FAS007: arrays but no shape words
    return contexts.sum(axis=1)


def update(x: npt.NDArray[np.float64], reward: float) -> None:
    """Apply a rank-1 update of shape (d,)."""  # FAS007: mutator, no invariants
    del x, reward


def theta_hat(
    y: npt.NDArray[np.float64], b: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Solve Y theta = b for the (d,) estimate.

    The cached inverse stays valid; callers hold a d x d SPD ``Y``.
    """
    return np.linalg.solve(y, b)  # ok: shapes + invariants documented


def _internal(y):
    return y  # private: not checked
