"""FAS010 fixture: wall-clock reads in library timing paths.

Durations must come from ``repro.obs.clock.monotonic``; artefact
timestamps from ``repro.obs.clock.wall_time`` (the one sanctioned
``time.time`` site).
"""

import datetime as dt
import time
from datetime import datetime
from time import time as now


def stamp_run():
    return time.time()  # -> FAS010


def legacy_alias_stamp():
    return now()  # -> FAS010


def localized_stamp():
    return datetime.now()  # -> FAS010


def day_of_run():
    return datetime.today()  # -> FAS010


def utc_stamp():
    return dt.datetime.utcnow()  # -> FAS010


def round_duration():
    start = time.perf_counter()  # monotonic: allowed
    time.sleep(0)  # not a clock read: allowed
    return time.perf_counter() - start
