"""Fixture: a file with no violations at all."""

import math

from numpy.random import default_rng


def sample(seed):
    return default_rng(seed).random()


def near_zero(value, tol=1e-12):
    return math.isclose(value, 0.0, abs_tol=tol)
