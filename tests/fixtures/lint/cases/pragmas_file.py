"""Fixture: file-level pragma suppression (whole file comes back clean)."""
# fasealint: disable-file=FAS004, FAS005


def swallow(fn, bucket=[]):  # FAS004 suppressed file-wide
    try:
        return fn(bucket)
    except Exception:  # FAS005 suppressed file-wide
        return None
