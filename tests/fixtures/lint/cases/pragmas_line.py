"""Fixture: line-level pragma suppression."""


def suppressed(values):
    return sum(v == 0.0 for v in values)  # fasealint: disable=FAS003


def suppressed_all(item, bucket=[]):  # fasealint: disable=all
    bucket.append(item)
    return bucket


def still_flagged(values):
    return sum(v == 1.0 for v in values)  # FAS003: no pragma, survives
