"""Selection path that sorts before iterating (no FAS013)."""


def pick(options):
    candidates = set(options)
    for item in sorted(candidates):
        return item
    return None
