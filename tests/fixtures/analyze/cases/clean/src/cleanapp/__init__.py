"""Counterpart project: same shape as proj, zero findings."""
