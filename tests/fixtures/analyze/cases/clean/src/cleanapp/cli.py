"""Entry module for the clean project."""

from cleanapp.selection import pick
from cleanapp.workers import run_all


def main(seed=0):
    values = run_all([1.0, 2.0, 3.0])
    return pick(values), seed
