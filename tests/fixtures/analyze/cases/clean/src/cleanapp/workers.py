"""Pure work unit plus a seeded generator (no FAS011/FAS012)."""

from numpy.random import default_rng

from repro.parallel import run_work_units


def run_all(values, jobs=2, seed=0):
    rng = default_rng(seed)
    shifted = [value + rng.random() for value in values]
    return run_work_units(double, shifted, jobs=jobs)


def double(item):
    return item * 2
