"""Miniature project with one seeded violation per FAS011-FAS014."""
