"""FAS014: a public export nothing reaches."""


def unused_helper(values):
    return sorted(values)


def _internal(values):
    return list(values)
