"""FAS012: submits a transitively impure work unit to the executor."""

from miniapp.util import work_unit
from repro.parallel import run_work_units


def run_all(values, jobs=2):
    return run_work_units(work_unit, list(values), jobs=jobs)
