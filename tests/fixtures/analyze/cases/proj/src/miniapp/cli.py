"""Entry module: everything reachable from here is live."""

from miniapp.pipeline import run_pipeline
from miniapp.selection import pick_best
from miniapp.workers import run_all


def main(seed=0):
    values = [1.0, 2.0, 3.0]
    noisy = run_pipeline(values)
    doubled = run_all(values)
    return pick_best(noisy + doubled), seed
