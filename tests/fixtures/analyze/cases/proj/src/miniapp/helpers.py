"""Private helper constructing uncontrolled randomness (FAS011 source)."""

from numpy.random import default_rng


def _draw_noise(values):
    rng = default_rng()
    return [value + rng.random() for value in values]
