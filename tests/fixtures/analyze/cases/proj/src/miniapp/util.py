"""Work unit whose impurity hides one call deep."""


def work_unit(item):
    _log(item)
    return item * 2


def _log(item):
    print("processed", item)
