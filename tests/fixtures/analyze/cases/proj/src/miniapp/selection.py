"""FAS013: unordered set iteration on a selection path."""


def pick_best(scores):
    candidates = set(scores)
    best = None
    for item in candidates:
        if best is None or item > best:
            best = item
    return best
