"""FAS011: public entry path that consumes randomness two hops away."""

from miniapp.helpers import _draw_noise


def run_pipeline(values):
    return _draw_noise(values)
