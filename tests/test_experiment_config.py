"""Experiment-config helpers: scales, suite plumbing, metric curves."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import (
    base_config,
    compare_policies,
    metric_curves,
    scaled_capacity,
    scaled_num_events,
)


def test_base_config_paper_scale():
    config = base_config("paper", seed=3)
    assert config.num_events == 500
    assert config.horizon == 100_000
    assert config.seed == 3


def test_base_config_scaled_scale():
    config = base_config("scaled", seed=3)
    assert config.num_events == 100
    assert config.horizon == 10_000
    assert (config.capacity_mean, config.capacity_std) == (90.0, 45.0)


def test_base_config_rejects_unknown_scale():
    with pytest.raises(ConfigurationError):
        base_config("enormous")


def test_scaled_num_events_mapping():
    assert scaled_num_events("paper", 1000) == 1000
    assert scaled_num_events("scaled", 1000) == 200
    assert scaled_num_events("scaled", 100) == 20
    assert scaled_num_events("scaled", 5) == 2  # floor of 2


def test_scaled_capacity_mapping():
    assert scaled_capacity("paper", 500, 200) == (500, 200)
    mean, std = scaled_capacity("scaled", 500, 200)
    assert mean == pytest.approx(225.0)
    assert std == pytest.approx(90.0)


@pytest.fixture(scope="module")
def tiny_suite():
    config = base_config("scaled", seed=0).with_overrides(
        num_events=15, horizon=200, dim=3, capacity_mean=10.0, capacity_std=4.0
    )
    return compare_policies(config, horizon=200, policy_names=("UCB", "Random"))


def test_suite_contains_opt_and_policies(tiny_suite):
    assert set(tiny_suite.policies) == {"UCB", "Random"}
    assert tiny_suite.opt.policy_name == "OPT"
    all_histories = tiny_suite.all_histories()
    assert set(all_histories) == {"UCB", "Random", "OPT"}


def test_suite_checkpoints_cover_the_horizon(tiny_suite):
    assert tiny_suite.checkpoints[-1] == 200
    assert all(1 <= t <= 200 for t in tiny_suite.checkpoints)


def test_metric_curves_shapes_and_membership(tiny_suite):
    curves = metric_curves(tiny_suite)
    assert set(curves) == {
        "accept_ratio",
        "total_rewards",
        "total_regrets",
        "regret_ratio",
    }
    n = len(tiny_suite.checkpoints)
    for metric, series in curves.items():
        for label, values in series.items():
            assert len(values) == n, (metric, label)
    assert "OPT" in curves["accept_ratio"]
    assert "OPT" not in curves["total_regrets"]


def test_metric_curves_regret_consistency(tiny_suite):
    """Regret curves equal OPT rewards minus policy rewards pointwise."""
    curves = metric_curves(tiny_suite)
    opt_rewards = np.asarray(curves["total_rewards"]["OPT"])
    ucb_rewards = np.asarray(curves["total_rewards"]["UCB"])
    ucb_regrets = np.asarray(curves["total_regrets"]["UCB"])
    assert np.allclose(ucb_regrets, opt_rewards - ucb_rewards)
