"""Perf-regression observatory: stamping, history IO, the compare gate.

``fasea obs bench`` is the CI tripwire: ``run`` stamps a provenance
record into ``BENCH_history.jsonl``, ``compare`` exits 1 when any
metric regresses past ``max(threshold·|mean|, bootstrap-CI halfwidth)``
(``exact`` metrics tolerate nothing — they *are* the determinism
contract), and ``report`` renders a dependency-free HTML trend page.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.exceptions import ConfigurationError, SchemaError
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    HISTORY_ENV_VAR,
    append_history,
    compare_histories,
    comparison_table_rows,
    direction_for,
    git_revision,
    has_regression,
    load_history,
    machine_fingerprint,
    maybe_record_bench_metrics,
    render_html_report,
    run_smoke_benchmark,
    stamp_record,
    validate_record,
    write_html_report,
)

SMOKE_KW = dict(repeats=1, horizon=60, num_events=8, dim=4, seed=0)


@pytest.fixture(scope="module")
def smoke_record():
    return run_smoke_benchmark(**SMOKE_KW)


# ----------------------------------------------------------------------
# Directions + stamping
# ----------------------------------------------------------------------
def test_direction_for_suffixes_and_overrides():
    assert direction_for("wall_seconds") == "lower"
    assert direction_for("select_ns") == "lower"
    assert direction_for("ucb_regret") == "lower"
    assert direction_for("total_reward") == "higher"
    assert direction_for("wall_seconds", {"wall_seconds": "exact"}) == "exact"
    with pytest.raises(ConfigurationError, match="unknown direction"):
        direction_for("x", {"x": "sideways"})


def test_stamp_record_carries_provenance():
    record = stamp_record("smoke", {"b_reward": 2.0, "a_seconds": 1.0})
    assert record["version"] == BENCH_SCHEMA_VERSION
    assert record["bench"] == "smoke"
    assert record["recorded_at"] > 0
    assert isinstance(record["git_rev"], str) and record["git_rev"]
    fingerprint = machine_fingerprint()
    assert record["machine"] == fingerprint
    assert {"platform", "machine", "python", "cpu_count"} <= set(fingerprint)
    # Metrics are sorted and direction-resolved at stamp time.
    assert list(record["metrics"]) == ["a_seconds", "b_reward"]
    assert record["directions"] == {"a_seconds": "lower", "b_reward": "higher"}
    validate_record(record)


def test_stamp_record_rejects_empty_inputs():
    with pytest.raises(ConfigurationError, match="non-empty"):
        stamp_record("", {"m": 1.0})
    with pytest.raises(ConfigurationError, match="no metrics"):
        stamp_record("smoke", {})


def test_git_revision_falls_back_outside_a_repo(tmp_path):
    assert git_revision(tmp_path) == "unknown"


# ----------------------------------------------------------------------
# History IO
# ----------------------------------------------------------------------
def test_history_roundtrip_and_bench_filter(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    first = stamp_record("smoke", {"m": 1.0})
    second = stamp_record("other", {"m": 2.0})
    append_history([first], path)
    append_history([second], path)  # appends, never truncates
    assert load_history(path) == [first, second]
    assert load_history(path, bench="other") == [second]
    assert load_history(path, bench="nope") == []


def test_history_loader_rejects_bad_documents(tmp_path):
    path = tmp_path / "h.jsonl"
    with pytest.raises(ConfigurationError, match="no bench history"):
        load_history(path)
    path.write_text("not json\n")
    with pytest.raises(ConfigurationError, match="invalid bench history"):
        load_history(path)
    path.write_text("[1]\n")
    with pytest.raises(ConfigurationError, match="not an object"):
        load_history(path)
    path.write_text(json.dumps({"version": 99, "bench": "x", "metrics": {}}))
    with pytest.raises(SchemaError, match="version 99"):
        load_history(path)
    path.write_text(json.dumps({"version": 1, "metrics": {}}))
    with pytest.raises(SchemaError, match="no 'bench' name"):
        load_history(path)


# ----------------------------------------------------------------------
# The compare gate
# ----------------------------------------------------------------------
def _record(metrics, directions=None, bench="smoke"):
    return stamp_record(bench, metrics, directions)


def test_identical_histories_compare_clean():
    base = [_record({"reward": 10.0, "wall_seconds": 0.5})]
    rows = compare_histories(base, base)
    assert {row.status for row in rows} == {"ok"}
    assert not has_regression(rows)


def test_exact_metrics_tolerate_no_drift_at_all():
    directions = {"reward": "exact"}
    base = [_record({"reward": 10.0}, directions)]
    drifted = [_record({"reward": 10.0 + 1e-12}, directions)]
    rows = compare_histories(base, drifted)
    assert rows[0].status == "regression"
    assert has_regression(rows)
    # ... in either direction: "better" drift is still a broken contract.
    rows = compare_histories(base, [_record({"reward": 11.0}, directions)])
    assert rows[0].status == "regression"


def test_noisy_metrics_gate_on_threshold_and_direction():
    base = [_record({"reward": 100.0, "wall_seconds": 1.0})]
    # -10% reward: regression (higher-is-better).
    rows = compare_histories(base, [_record({"reward": 90.0, "wall_seconds": 1.0})])
    by_metric = {row.metric: row for row in rows}
    assert by_metric["reward"].status == "regression"
    assert by_metric["reward"].delta == -10.0
    # +10% wall time: regression (lower-is-better) ...
    rows = compare_histories(base, [_record({"reward": 100.0, "wall_seconds": 1.1})])
    assert {r.metric: r.status for r in rows}["wall_seconds"] == "regression"
    # ... while -10% wall time is an improvement, and ±4% is inside the gate.
    rows = compare_histories(base, [_record({"reward": 100.0, "wall_seconds": 0.9})])
    assert {r.metric: r.status for r in rows}["wall_seconds"] == "improvement"
    rows = compare_histories(base, [_record({"reward": 96.5, "wall_seconds": 1.04})])
    assert {row.status for row in rows} == {"ok"}


def test_wide_baselines_earn_wide_gates():
    # Baseline spread >> 5% of the mean: the bootstrap-CI halfwidth
    # takes over, so a delta that the relative floor would flag passes.
    base = [_record({"reward": value}) for value in (80.0, 100.0, 120.0)]
    candidate = [_record({"reward": 92.0})]
    rows = compare_histories(base, candidate, threshold=0.05)
    assert rows[0].status == "ok"


def test_new_and_missing_metrics_are_informational():
    base = [_record({"old": 1.0, "both": 2.0})]
    candidate = [_record({"new": 3.0, "both": 2.0})]
    rows = compare_histories(base, candidate)
    statuses = {row.metric: row.status for row in rows}
    assert statuses == {"old": "missing", "new": "new", "both": "ok"}
    assert not has_regression(rows)
    table = comparison_table_rows(rows)
    flat = {row[1]: row for row in table}
    assert flat["old"][4] == "-"  # NaN candidate renders as "-"
    assert flat["new"][3] == "-"  # NaN baseline renders as "-"


def test_compare_rejects_negative_threshold():
    with pytest.raises(ConfigurationError, match="threshold"):
        compare_histories([], [], threshold=-0.1)


# ----------------------------------------------------------------------
# The smoke suite is the determinism contract
# ----------------------------------------------------------------------
def test_smoke_benchmark_is_bit_deterministic(smoke_record):
    again = run_smoke_benchmark(**SMOKE_KW)
    exact = {
        name
        for name, direction in smoke_record["directions"].items()
        if direction == "exact"
    }
    assert exact  # reward/ratio/regret metrics are stamped exact
    for name in exact:
        assert again["metrics"][name] == smoke_record["metrics"][name]
    assert smoke_record["directions"]["wall_seconds"] == "lower"
    rows = compare_histories([smoke_record], [again])
    # Gate on exact metrics only: wall_seconds is machine noise (two
    # in-process runs under a loaded test runner legitimately differ),
    # and the determinism contract this test pins is the exact rows.
    exact_rows = [row for row in rows if row.direction == "exact"]
    assert exact_rows
    assert not has_regression(exact_rows)


def test_smoke_benchmark_validates_repeats():
    with pytest.raises(ConfigurationError, match="repeats"):
        run_smoke_benchmark(repeats=0)


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------
def test_html_report_renders_sparklines_and_escapes(tmp_path, smoke_record):
    records = [smoke_record, run_smoke_benchmark(**SMOKE_KW)]
    hostile = stamp_record("<script>alert(1)</script>", {"m": 1.0})
    html = render_html_report(records + [hostile])
    assert "<svg" in html and "polyline" in html
    assert "<script>alert(1)</script>" not in html  # escaped
    assert "&lt;script&gt;" in html
    path = write_html_report(records, tmp_path / "sub" / "report.html")
    assert path.is_file() and path.read_text().startswith("<!DOCTYPE html>")


# ----------------------------------------------------------------------
# Ambient stamping hook (benchmarks/conftest.py)
# ----------------------------------------------------------------------
def test_maybe_record_is_a_noop_without_the_env_var(tmp_path, monkeypatch):
    monkeypatch.delenv(HISTORY_ENV_VAR, raising=False)
    assert maybe_record_bench_metrics("suite", {"m": 1.0}) is None
    assert not list(tmp_path.iterdir())


def test_maybe_record_appends_when_the_env_var_is_set(tmp_path, monkeypatch):
    path = tmp_path / "hist.jsonl"
    monkeypatch.setenv(HISTORY_ENV_VAR, str(path))
    written = maybe_record_bench_metrics("suite", {"m": 1.0}, {"m": "exact"})
    assert written == path
    records = load_history(path, bench="suite")
    assert len(records) == 1
    assert records[0]["directions"] == {"m": "exact"}


# ----------------------------------------------------------------------
# CLI: run / compare / report
# ----------------------------------------------------------------------
def test_cli_bench_run_compare_report_end_to_end(tmp_path, capsys):
    history = tmp_path / "BENCH_history.jsonl"
    code = cli_main(
        [
            "obs",
            "bench",
            "run",
            "--history",
            str(history),
            "--repeats",
            "1",
            "--horizon",
            "60",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "ucb_total_reward" in out
    assert history.is_file()

    # Same-baseline re-run: the gate passes (exit 0) — determinism.
    assert (
        cli_main(["obs", "bench", "compare", str(history), str(history)]) == 0
    )
    out = capsys.readouterr().out
    assert "ok" in out and "regression" not in out

    # Injected regression on an exact metric: the gate trips (exit 1).
    record = load_history(history)[0]
    broken = json.loads(json.dumps(record))
    broken["metrics"]["ucb_total_reward"] -= 5.0
    bad_history = tmp_path / "candidate.jsonl"
    append_history([broken], bad_history)
    code = cli_main(["obs", "bench", "compare", str(history), str(bad_history)])
    assert code == 1
    captured = capsys.readouterr()
    assert "regression" in captured.out
    assert "regressed" in captured.err  # the error summary names the gate

    report = tmp_path / "report.html"
    assert (
        cli_main(
            ["obs", "bench", "report", str(history), "--out", str(report)]
        )
        == 0
    )
    assert report.is_file()
    capsys.readouterr()


def test_cli_bench_compare_missing_history_is_usage_error(tmp_path, capsys):
    code = cli_main(
        [
            "obs",
            "bench",
            "compare",
            str(tmp_path / "none.jsonl"),
            str(tmp_path / "none.jsonl"),
        ]
    )
    assert code == 2
    assert "no bench history" in capsys.readouterr().err
