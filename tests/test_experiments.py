"""Experiment registry + smoke runs of each figure/table at tiny sizes.

These tests verify the harness plumbing (every experiment runs end to
end and produces well-formed results); the scientific assertions live
in test_paper_findings.py and EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments import figures, tables


def test_registry_covers_every_paper_artifact():
    ids = list_experiments()
    assert ids == (
        [f"fig{i}" for i in range(1, 14)] + ["tab5", "tab6", "tab7", "mab", "ext"]
    )


def test_get_experiment_rejects_unknown_ids():
    with pytest.raises(ConfigurationError):
        get_experiment("fig99")


def _assert_curves_well_formed(result):
    assert result.checkpoints
    for metric, series in result.curves.items():
        for label, values in series.items():
            assert len(values) == len(result.checkpoints), (metric, label)


@pytest.mark.parametrize("figure_id", ["fig1", "fig2"])
def test_default_setting_figures_smoke(figure_id):
    result = EXPERIMENTS[figure_id](scale="scaled", horizon=300)
    assert result.experiment_id == figure_id
    _assert_curves_well_formed(result)


def test_figure1_has_all_four_metrics():
    result = figures.figure1(horizon=300)
    assert set(result.curves) == {
        "accept_ratio",
        "total_rewards",
        "total_regrets",
        "regret_ratio",
    }
    assert "OPT" in result.curves["accept_ratio"]
    assert "OPT" not in result.curves["total_regrets"]


def test_figure2_taus_are_bounded():
    result = figures.figure2(horizon=300)
    for values in result.curves["kendall_tau"].values():
        assert np.all(np.abs(np.asarray(values)) <= 1.0)


def test_figure4_sweeps_dimensions():
    result = figures.figure4(horizon=200, dims=(1, 3))
    labels = set(result.curves["accept_ratio"])
    assert any("d=1" in label for label in labels)
    assert any("d=3" in label for label in labels)
    _assert_curves_well_formed(result)


def test_figure7_sweeps_conflict_ratios():
    result = figures.figure7(horizon=200, ratios=(0.0, 1.0))
    labels = set(result.curves["accept_ratio"])
    assert any("cr=0" in label for label in labels)
    assert any("cr=1" in label for label in labels)


def test_figure8_sweeps_lambda():
    result = figures.figure8(horizon=200, lams=(0.5, 2.0))
    labels = set(result.curves["total_regrets"])
    assert any("lam=0.5" in label for label in labels)
    assert not any("Random" in label for label in labels)  # lambda-free


def test_figure9_sweeps_per_algorithm_parameters():
    result = figures.figure9(horizon=200)
    labels = set(result.curves["total_regrets"])
    assert any(label.startswith("UCB alpha=") for label in labels)
    assert any(label.startswith("TS delta=") for label in labels)
    assert any(label.startswith("eGreedy epsilon=") for label in labels)


def test_figure10_real_data_smoke():
    result = figures.figure10(accept_horizon=100, regret_horizon=200)
    _assert_curves_well_formed(result)
    labels = set(result.curves["total_regrets"])
    assert any("cu=5" in label for label in labels)
    assert any("cu=full" in label for label in labels)


def test_figure11_basic_mode_smoke():
    result = figures.figure11(horizon=200)
    _assert_curves_well_formed(result)
    assert "total_regrets" in result.curves


def test_table5_orders_and_grows(small_config):
    result = tables.table5(
        scale="scaled", rounds=10, num_events_values=(10, 30)
    )
    time_table = result.tables[0]
    assert time_table.headers == ["Algorithm", "|V|=10", "|V|=30"]
    by_name = {row[0]: row[1:] for row in time_table.rows}
    assert set(by_name) == {"UCB", "TS", "eGreedy", "Exploit", "Random"}
    # Random is the cheapest at every size.
    for column in range(2):
        assert by_name["Random"][column] == min(
            values[column] for values in by_name.values()
        )


def test_table6_smoke():
    result = tables.table6(scale="scaled", rounds=5, dims=(1, 4))
    assert len(result.tables) == 2
    assert result.tables[0].headers == ["Algorithm", "d=1", "d=4"]


def test_mab_experiment_ts_wins_there():
    from repro.experiments.extras import mab_experiment

    result = mab_experiment(horizon=3000)
    regrets = result.curves["cumulative_regret"]
    assert regrets["TS-Beta"][-1] < regrets["Random-MAB"][-1]
    assert regrets["UCB1"][-1] < regrets["Random-MAB"][-1]
    _assert_curves_well_formed(result)


def test_extensions_experiment_per_user_wins():
    from repro.experiments.extras import extensions_experiment

    result = extensions_experiment(horizon=600)
    remark1 = result.tables[0]
    ratios = {row[0]: row[1] for row in remark1.rows}
    assert ratios["per-user UCB pool"] > ratios["shared UCB"]
    remark2 = result.tables[1]
    dynamic = {row[0]: row[1] for row in remark2.rows}
    assert dynamic["UCB"] > dynamic["Random"]


def test_table7_smoke(damai):
    result = tables.table7(horizon=30)
    assert len(result.tables) == 2
    cu5 = result.tables[0]
    assert len(cu5.headers) == 20  # Algorithm + 19 users
    names = [row[0] for row in cu5.rows]
    assert names == ["UCB", "TS", "eGreedy", "Exploit", "Random", "Full Kn.", "Online[39]"]
    cu_full = result.tables[1]
    assert [row[0] for row in cu_full.rows][-1] == "c_u"
    # Every ratio cell is a valid ratio.
    for row in cu5.rows:
        for cell in row[1:]:
            assert 0.0 <= float(cell) <= 1.0
