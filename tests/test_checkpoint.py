"""repro.io.checkpoint: state capture primitives, caches, manifests.

Unit tests of the crash-safe checkpoint layer: exact RNG/ridge/
environment round trips, the atomic-write contract, the executor's
unit-result cache and the checkpoint-directory manifest.  The
end-to-end kill-and-resume proofs live in
``tests/test_checkpoint_resume.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bandits import make_policy
from repro.bandits.disjoint import DisjointUcbPolicy
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.exceptions import ConfigurationError, LedgerError
from repro.io.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CellCheckpointSpec,
    ExecutorCheckpoint,
    RunCheckpointer,
    atomic_save_npz,
    atomic_write_bytes,
    capture_policy_state,
    check_manifest,
    executor_checkpoint_scope,
    load_manifest,
    load_unit_result,
    pack_state,
    restore_policy_state,
    save_unit_result,
    unit_digest,
    unpack_state,
    write_manifest,
)
from repro.linalg.ridge import RidgeState
from repro.linalg.sampling import capture_rng_state, restore_rng_state
from repro.parallel import PolicyRunCell, run_policy_run_cell
from repro.simulation.environment import FaseaEnvironment


def tiny_config(**overrides) -> SyntheticConfig:
    base = dict(
        num_events=12,
        horizon=100,
        dim=4,
        capacity_mean=8.0,
        capacity_std=3.0,
        conflict_ratio=0.25,
        seed=0,
    )
    base.update(overrides)
    return SyntheticConfig(**base)


# ----------------------------------------------------------------------
# RNG state capture
# ----------------------------------------------------------------------
def test_rng_state_round_trip_is_bit_exact():
    rng = np.random.default_rng(7)
    rng.standard_normal(13)  # advance off the seed boundary
    state = capture_rng_state(rng)
    ahead = rng.standard_normal(50)
    restore_rng_state(rng, state)
    np.testing.assert_array_equal(rng.standard_normal(50), ahead)


def test_rng_restore_rejects_wrong_bit_generator():
    rng = np.random.default_rng(0)
    state = capture_rng_state(rng)
    state["bit_generator"] = "MT19937"
    with pytest.raises(ConfigurationError, match="MT19937"):
        restore_rng_state(np.random.default_rng(0), state)


def test_rng_restore_rejects_malformed_state():
    rng = np.random.default_rng(0)
    state = capture_rng_state(rng)
    state["state"] = {"nonsense": True}
    with pytest.raises(ConfigurationError, match="invalid RNG state"):
        restore_rng_state(np.random.default_rng(0), state)


# ----------------------------------------------------------------------
# Ridge state: exact (inverse-preserving) checkpoints
# ----------------------------------------------------------------------
def _trained_ridge(dim: int = 4, rounds: int = 40) -> RidgeState:
    rng = np.random.default_rng(3)
    state = RidgeState(dim=dim)
    for _ in range(rounds):
        state.update(rng.standard_normal(dim), float(rng.uniform()))
    state.theta_hat()  # materialise the cached estimate + inverse
    return state


def test_ridge_checkpoint_round_trip_preserves_future_bits():
    """Resume must replay later updates bit-identically — including the
    maintained Sherman-Morrison inverse, which plain (Y, b) restore
    recomputes with different low-order bits."""
    state = _trained_ridge()
    snapshot = state.checkpoint_state()
    rng = np.random.default_rng(9)
    updates = [(rng.standard_normal(4), float(rng.uniform())) for _ in range(25)]
    for x, r in updates:
        state.update(x, r)
    expected = state.theta_hat().copy()

    resumed = RidgeState(dim=4)
    resumed.restore_checkpoint(snapshot)
    for x, r in updates:
        resumed.update(x, r)
    np.testing.assert_array_equal(resumed.theta_hat(), expected)
    np.testing.assert_array_equal(resumed.y_inv, state.y_inv)


def test_ridge_checkpoint_survives_npz(tmp_path):
    state = _trained_ridge()
    path = atomic_save_npz(tmp_path / "ridge.npz", state.checkpoint_state())
    with np.load(path) as archive:
        stored = {name: archive[name].copy() for name in archive.files}
    resumed = RidgeState(dim=4)
    resumed.restore_checkpoint(stored)
    np.testing.assert_array_equal(resumed.theta_hat(), state.theta_hat())


def test_ridge_restore_names_both_shapes_on_mismatch():
    snapshot = _trained_ridge(dim=5).checkpoint_state()
    with pytest.raises(ConfigurationError, match=r"\(5, 5\)") as excinfo:
        RidgeState(dim=3).restore_checkpoint(snapshot)
    assert "(3, 3)" in str(excinfo.value)


# ----------------------------------------------------------------------
# Environment state round trip
# ----------------------------------------------------------------------
def _play_rounds(env: FaseaEnvironment, rounds: int):
    """Arrange the first available event each round; return observables."""
    trail = []
    for _ in range(rounds):
        view = env.begin_round()
        arranged = []
        for event_id in range(env.num_events):
            if view.remaining_capacities[event_id] > 0:
                arranged = [event_id]
                break
        rewards, entry = env.commit(arranged)
        trail.append(
            (view.user.user_id, view.contexts.tobytes(), tuple(rewards), entry.reward)
        )
    return trail


def test_environment_state_round_trip_is_bit_exact():
    world = build_world(tiny_config())
    env = FaseaEnvironment(world, run_seed=5)
    _play_rounds(env, 10)
    state = env.state_dict()
    expected = _play_rounds(env, 8)

    resumed = FaseaEnvironment(world, run_seed=5)
    resumed.restore_state(state)
    assert _play_rounds(resumed, 8) == expected
    assert resumed.time_step == env.time_step
    assert list(resumed.platform.ledger) == list(env.platform.ledger)


def test_environment_state_survives_npz(tmp_path):
    world = build_world(tiny_config())
    env = FaseaEnvironment(world, run_seed=5)
    _play_rounds(env, 6)
    path = atomic_save_npz(tmp_path / "env.npz", pack_state("env.", env.state_dict()))
    expected = _play_rounds(env, 5)
    with np.load(path) as archive:
        stored = {name: archive[name].copy() for name in archive.files}
    resumed = FaseaEnvironment(world, run_seed=5)
    resumed.restore_state(unpack_state("env.", stored))
    assert _play_rounds(resumed, 5) == expected


def test_environment_refuses_mid_round_checkpoint():
    env = FaseaEnvironment(build_world(tiny_config()), run_seed=0)
    env.begin_round()
    with pytest.raises(ConfigurationError, match="mid-round"):
        env.state_dict()


def test_ledger_restore_rejects_corrupt_offsets():
    world = build_world(tiny_config())
    env = FaseaEnvironment(world, run_seed=1)
    _play_rounds(env, 4)
    state = env.platform.state_dict()
    bad = dict(state)
    offsets = np.asarray(bad["ledger_arranged_offsets"]).copy()
    offsets[-1] += 3  # points past the flat array
    bad["ledger_arranged_offsets"] = offsets
    resumed = FaseaEnvironment(world, run_seed=1)
    with pytest.raises(LedgerError):
        resumed.platform.restore_state(bad)


def test_event_store_restore_rejects_out_of_range_capacity():
    world = build_world(tiny_config())
    env = FaseaEnvironment(world, run_seed=1)
    state = env.state_dict()
    remaining = np.asarray(state["platform_remaining"]).copy()
    remaining[0] = remaining[0] + 1e9  # above initial capacity
    state["platform_remaining"] = remaining
    resumed = FaseaEnvironment(world, run_seed=1)
    with pytest.raises(ConfigurationError):
        resumed.restore_state(state)


# ----------------------------------------------------------------------
# Policy state capture (exact layout, incl. RNG)
# ----------------------------------------------------------------------
def test_policy_capture_round_trip_ts():
    policy = make_policy("TS", dim=4, seed=11)
    rng = np.random.default_rng(2)
    for _ in range(30):
        policy.model.state.update(rng.standard_normal(4), float(rng.uniform()))
    arrays = capture_policy_state(policy)
    ahead = policy._rng.standard_normal(20)

    clone = make_policy("TS", dim=4, seed=11)
    restore_policy_state(clone, arrays)
    np.testing.assert_array_equal(clone._rng.standard_normal(20), ahead)
    np.testing.assert_array_equal(
        clone.model.state.theta_hat(), policy.model.state.theta_hat()
    )


def test_policy_capture_round_trip_disjoint():
    policy = DisjointUcbPolicy(num_events=3, dim=3)
    rng = np.random.default_rng(4)
    for index in range(3):
        for _ in range(10):
            policy.model_for(index).state.update(
                rng.standard_normal(3), float(rng.uniform())
            )
    arrays = capture_policy_state(policy)
    clone = DisjointUcbPolicy(num_events=3, dim=3)
    restore_policy_state(clone, arrays)
    for index in range(3):
        np.testing.assert_array_equal(
            clone.model_for(index).state.y, policy.model_for(index).state.y
        )


def test_policy_restore_rejects_structural_mismatches():
    trained = make_policy("UCB", dim=4)
    arrays = capture_policy_state(trained)
    with pytest.raises(ConfigurationError, match="no state for disjoint model"):
        restore_policy_state(DisjointUcbPolicy(num_events=2, dim=4), arrays)
    with pytest.raises(ConfigurationError, match="has no model"):
        restore_policy_state(make_policy("Random", seed=0, dim=4), arrays)
    with pytest.raises(ConfigurationError, match="no model state"):
        restore_policy_state(make_policy("UCB", dim=4), {})
    with pytest.raises(ConfigurationError, match="no RNG state"):
        restore_policy_state(
            make_policy("TS", dim=4, seed=1),
            capture_policy_state(make_policy("Exploit", dim=4)),
        )


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
def test_atomic_write_bytes_leaves_no_temp_file(tmp_path):
    path = atomic_write_bytes(tmp_path / "blob.bin", b"payload")
    assert path.read_bytes() == b"payload"
    assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]


def test_atomic_save_npz_replaces_previous_slot(tmp_path):
    target = tmp_path / "slot.npz"
    atomic_save_npz(target, {"x": np.arange(3)})
    atomic_save_npz(target, {"x": np.arange(5)})
    with np.load(target) as archive:
        assert archive["x"].shape == (5,)
    assert [p.name for p in tmp_path.iterdir()] == ["slot.npz"]


# ----------------------------------------------------------------------
# Cell checkpoint slots
# ----------------------------------------------------------------------
def test_cell_spec_validates_cadence_and_key(tmp_path):
    with pytest.raises(ConfigurationError, match="cadence"):
        CellCheckpointSpec(directory=str(tmp_path), key="a", every=0)
    with pytest.raises(ConfigurationError, match="flat name"):
        CellCheckpointSpec(directory=str(tmp_path), key="a/b")
    with pytest.raises(ConfigurationError, match="flat name"):
        CellCheckpointSpec(directory=str(tmp_path), key="")


def test_run_checkpointer_save_load_clear(tmp_path):
    spec = CellCheckpointSpec(directory=str(tmp_path), key="cell", every=10)
    saver = RunCheckpointer(spec)
    assert saver.due(10) and saver.due(20) and not saver.due(15)
    saver.save({"t": np.array([10])})
    # Not resuming: load() is None even though the slot exists.
    assert saver.load() is None
    resume = RunCheckpointer(
        CellCheckpointSpec(directory=str(tmp_path), key="cell", every=10, resume=True)
    )
    stored = resume.load()
    assert int(stored["t"][0]) == 10
    assert int(stored["checkpoint_version"][0]) == CHECKPOINT_SCHEMA_VERSION
    resume.clear()
    assert resume.load() is None
    resume.clear()  # idempotent


def test_run_checkpointer_rejects_foreign_slots(tmp_path):
    RunCheckpointer(
        CellCheckpointSpec(directory=str(tmp_path), key="mine", every=5)
    ).save({"t": np.array([5])})
    stolen = tmp_path / "theirs.ckpt.npz"
    (tmp_path / "mine.ckpt.npz").rename(stolen)
    with pytest.raises(ConfigurationError, match="belongs to cell 'mine'"):
        RunCheckpointer(
            CellCheckpointSpec(
                directory=str(tmp_path), key="theirs", every=5, resume=True
            )
        ).load()


def test_run_checkpointer_rejects_non_checkpoint_archives(tmp_path):
    np.savez(tmp_path / "cell.ckpt.npz", junk=np.ones(2))
    with pytest.raises(ConfigurationError, match="not a run checkpoint"):
        RunCheckpointer(
            CellCheckpointSpec(directory=str(tmp_path), key="cell", resume=True)
        ).load()


# ----------------------------------------------------------------------
# Unit-result cache
# ----------------------------------------------------------------------
def test_unit_cache_round_trip(tmp_path):
    digest = unit_digest(run_policy_run_cell, "unit")
    assert load_unit_result(str(tmp_path), 0, digest) is None  # miss
    save_unit_result(str(tmp_path), 0, digest, {"value": None})
    hit = load_unit_result(str(tmp_path), 0, digest)
    assert hit == ({"value": None},)  # 1-tuple keeps None distinguishable


def test_unit_cache_rejects_digest_mismatch(tmp_path):
    save_unit_result(str(tmp_path), 0, unit_digest(len, "a"), 1)
    with pytest.raises(ConfigurationError, match="digest mismatch"):
        load_unit_result(str(tmp_path), 0, unit_digest(len, "b"))


def test_unit_digest_ignores_checkpoint_wiring(tmp_path):
    base = PolicyRunCell(
        config=tiny_config(),
        policy_name="UCB",
        horizon=50,
        run_seed=0,
        policy_seed=7,
    )
    wired = PolicyRunCell(
        config=tiny_config(),
        policy_name="UCB",
        horizon=50,
        run_seed=0,
        policy_seed=7,
        checkpoint=CellCheckpointSpec(
            directory=str(tmp_path), key="UCB", every=10, resume=True
        ),
    )
    other = PolicyRunCell(
        config=tiny_config(),
        policy_name="TS",
        horizon=50,
        run_seed=0,
        policy_seed=7,
    )
    fn = run_policy_run_cell
    assert unit_digest(fn, base) == unit_digest(fn, wired)
    assert unit_digest(fn, base) != unit_digest(fn, other)


def test_executor_checkpoint_allocates_distinct_call_scopes(tmp_path):
    checkpoint = ExecutorCheckpoint(tmp_path)
    first = checkpoint.call_scope()
    second = checkpoint.call_scope()
    assert first.directory != second.directory
    assert first.directory.is_dir() and second.directory.is_dir()


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def test_manifest_round_trip_and_validation(tmp_path):
    payload = {"command": "quickstart", "horizon": 2000, "every": 200}
    write_manifest(tmp_path, payload)
    stored = load_manifest(tmp_path)
    assert stored["horizon"] == 2000
    assert check_manifest(tmp_path, {"command": "quickstart"})["every"] == 200


def test_manifest_mismatches_are_reported_together(tmp_path):
    write_manifest(tmp_path, {"command": "quickstart", "horizon": 2000})
    with pytest.raises(ConfigurationError) as excinfo:
        check_manifest(tmp_path, {"command": "replicate", "horizon": 100})
    message = str(excinfo.value)
    assert "command" in message and "horizon" in message


def test_manifest_missing_and_corrupt(tmp_path):
    with pytest.raises(ConfigurationError, match="no checkpoint manifest"):
        load_manifest(tmp_path)
    (tmp_path / "manifest.json").write_text("{not json")
    with pytest.raises(ConfigurationError, match="unreadable"):
        load_manifest(tmp_path)
    (tmp_path / "manifest.json").write_text(json.dumps({"version": 99}))
    with pytest.raises(ConfigurationError, match="manifest version"):
        load_manifest(tmp_path)


def test_serial_sweep_caches_cells_under_ambient_checkpoint(tmp_path):
    """An ambient executor checkpoint routes even a serial grid sweep
    through the unit cache: same results as the inline loop, and a
    resumed sweep replays every cell from disk."""
    from repro.experiments.grid import sweep

    base = tiny_config()
    axes = {"dim": [2, 3]}
    plain = sweep(base, axes, horizon=40)

    with executor_checkpoint_scope(ExecutorCheckpoint(tmp_path)):
        cached = sweep(base, axes, horizon=40)
    assert cached == plain
    assert list(tmp_path.glob("call-*/unit-*.pkl"))

    with executor_checkpoint_scope(ExecutorCheckpoint(tmp_path, resume=True)):
        replayed = sweep(base, axes, horizon=40)
    assert replayed == plain
