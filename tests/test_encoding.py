"""The binary categorical encoding of Table 3 / reference [26]."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.encoding import (
    CategoricalEncoder,
    CategoricalField,
    FeatureSchema,
    NumericField,
    binary_encode,
    code_width,
)
from repro.exceptions import ConfigurationError


def test_paper_performer_codes():
    """male <0,1>, female <1,0>, group <1,1> — verbatim from the paper."""
    encoder = CategoricalEncoder(["male", "female", "group"])
    assert encoder.encode("male") == (0, 1)
    assert encoder.encode("female") == (1, 0)
    assert encoder.encode("group") == (1, 1)


def test_code_width_covers_all_values():
    assert code_width(1) == 1
    assert code_width(3) == 2
    assert code_width(7) == 3
    assert code_width(8) == 4  # index 8 needs 4 bits (all-zero unused)
    assert code_width(11) == 4


def test_code_width_validation():
    with pytest.raises(ConfigurationError):
        code_width(0)


def test_binary_encode_msb_first():
    assert binary_encode(5, 3) == (1, 0, 1)
    assert binary_encode(1, 4) == (0, 0, 0, 1)


def test_binary_encode_validation():
    with pytest.raises(ConfigurationError):
        binary_encode(0, 2)
    with pytest.raises(ConfigurationError):
        binary_encode(4, 2)


@settings(max_examples=40, deadline=None)
@given(num_values=st.integers(1, 40))
def test_all_codes_distinct_and_nonzero(num_values):
    encoder = CategoricalEncoder([f"v{i}" for i in range(num_values)])
    codes = {encoder.encode(f"v{i}") for i in range(num_values)}
    assert len(codes) == num_values
    assert all(any(bit for bit in code) for code in codes)


def test_encoder_rejects_unknown_and_duplicates():
    encoder = CategoricalEncoder(["a", "b"])
    with pytest.raises(ConfigurationError):
        encoder.encode("c")
    with pytest.raises(ConfigurationError):
        CategoricalEncoder(["a", "a"])
    with pytest.raises(ConfigurationError):
        CategoricalEncoder([])


def make_schema():
    return FeatureSchema(
        [
            CategoricalField("color", ("red", "green", "blue")),
            NumericField("size", 0.0, 1.0),
        ]
    )


def test_schema_dim_is_sum_of_field_widths():
    assert make_schema().dim == 3  # 2 bits + 1 numeric


def test_schema_encode_concatenates_fields():
    vector = make_schema().encode({"color": "green", "size": 0.5})
    assert np.allclose(vector, [1, 0, 0.5])


def test_schema_encode_normalized_divides_by_dim():
    schema = make_schema()
    vector = schema.encode_normalized({"color": "blue", "size": 1.0})
    assert np.allclose(vector, np.array([1, 1, 1]) / 3)
    assert np.linalg.norm(vector) <= 1.0


def test_schema_missing_field_and_range_checks():
    schema = make_schema()
    with pytest.raises(ConfigurationError):
        schema.encode({"color": "red"})
    with pytest.raises(ConfigurationError):
        schema.encode({"color": "red", "size": 2.0})


def test_schema_field_slices_partition_the_vector():
    slices = make_schema().field_slices()
    assert slices["color"] == slice(0, 2)
    assert slices["size"] == slice(2, 3)


def test_schema_rejects_duplicate_names_and_empty():
    with pytest.raises(ConfigurationError):
        FeatureSchema(
            [NumericField("x"), NumericField("x")]
        )
    with pytest.raises(ConfigurationError):
        FeatureSchema([])
