"""Tests for the fasealint static-analysis subsystem (FAS001-FAS010, FAS015-FAS016).

Covers: per-rule firing on known-bad fixtures, the golden JSON report,
pragma suppression at line/file granularity, select/ignore filtering,
parse-error handling (FAS000) and the self-check that the repository's
own ``src/`` tree is lint-clean.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools.lint.engine import (
    PARSE_ERROR_ID,
    LintConfig,
    Violation,
    lint_file,
    lint_paths,
    registered_rules,
    resolve_rules,
)
from repro.devtools.lint.reporters import render_json, render_text, summarize

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"
CASES = FIXTURES / "cases"

ALL_RULES = (
    "FAS001",
    "FAS002",
    "FAS003",
    "FAS004",
    "FAS005",
    "FAS006",
    "FAS007",
    "FAS008",
    "FAS009",
    "FAS010",
    "FAS015",
    "FAS016",
)

#: fixture file (relative to CASES) -> (rule id, expected hit count)
RULE_FIXTURES = {
    "fas001_global_random.py": ("FAS001", 4),
    "fas002_unseeded.py": ("FAS002", 2),
    "fas003_float_eq.py": ("FAS003", 3),
    "fas004_mutable_default.py": ("FAS004", 3),
    "fas005_broad_except.py": ("FAS005", 2),
    "fas006_unpicklable.py": ("FAS006", 3),
    "src/repro/linalg/fas007_shapes.py": ("FAS007", 4),
    "src/fas008_assert.py": ("FAS008", 2),
    "src/repro/fas009_print.py": ("FAS009", 3),
    "src/repro/fas010_wallclock.py": ("FAS010", 5),
    "src/repro/fas015_schema_literal.py": ("FAS015", 2),
    "src/repro/fas016_metric_literal.py": ("FAS016", 4),
}


# ----------------------------------------------------------------------
# Registry / engine basics
# ----------------------------------------------------------------------
def test_registry_contains_the_full_catalogue():
    registry = registered_rules()
    assert tuple(sorted(registry)) == ALL_RULES
    for rule_id, rule_cls in registry.items():
        assert rule_cls.rule_id == rule_id
        assert rule_cls.summary  # every rule documents itself


def test_resolve_rules_rejects_unknown_ids():
    with pytest.raises(ValueError, match="FAS999"):
        resolve_rules(LintConfig(select=("FAS999",)))
    with pytest.raises(ValueError, match="FAS999"):
        resolve_rules(LintConfig(ignore=("FAS999",)))


def test_violations_sort_by_location():
    earlier = Violation("a.py", 1, 0, "FAS003", "x")
    later = Violation("a.py", 2, 0, "FAS001", "x")
    other_file = Violation("b.py", 1, 0, "FAS001", "x")
    assert sorted([other_file, later, earlier]) == [earlier, later, other_file]


# ----------------------------------------------------------------------
# Per-rule firing on fixtures
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "relpath,rule_id,expected",
    [(rel, rid, n) for rel, (rid, n) in sorted(RULE_FIXTURES.items())],
)
def test_rule_fires_on_fixture(relpath, rule_id, expected):
    violations = lint_file(CASES / relpath)
    hits = [v for v in violations if v.rule_id == rule_id]
    assert len(hits) == expected, render_text(violations)
    # The fixture must not trip *other* rules: each file isolates one rule.
    assert {v.rule_id for v in violations} == {rule_id}


def test_clean_fixture_produces_no_violations():
    assert lint_file(CASES / "clean.py") == []


def test_fas005_allows_broad_except_that_reraises():
    violations = lint_file(CASES / "fas005_broad_except.py")
    flagged_lines = {v.line for v in violations}
    assert flagged_lines == {7, 14}  # the re-raising handler (line 21) passes


def test_fas006_flags_lambda_nested_and_partial():
    violations = lint_file(CASES / "fas006_unpicklable.py")
    messages = " ".join(v.message for v in violations)
    assert "lambda" in messages
    assert "module level" in messages
    assert "partial" in messages


def test_fas007_scoping_is_limited_to_repro_linalg(tmp_path):
    # The same un-annotated source outside src/repro/linalg is not FAS007.
    source = (CASES / "src" / "repro" / "linalg" / "fas007_shapes.py").read_text()
    elsewhere = tmp_path / "fas007_shapes.py"
    elsewhere.write_text(source)
    assert all(v.rule_id != "FAS007" for v in lint_file(elsewhere))


def test_fas008_scoping_is_limited_to_src(tmp_path):
    source = (CASES / "src" / "fas008_assert.py").read_text()
    elsewhere = tmp_path / "fas008_assert.py"
    elsewhere.write_text(source)
    assert lint_file(elsewhere) == []


def test_fas010_scoping_exempts_tests_and_the_clock_module(tmp_path):
    source = (CASES / "src" / "repro" / "fas010_wallclock.py").read_text()
    # Outside src/, wall-clock reads are fine (tests, scripts, benches).
    elsewhere = tmp_path / "fas010_wallclock.py"
    elsewhere.write_text(source)
    assert all(v.rule_id != "FAS010" for v in lint_file(elsewhere))
    # repro/obs/clock.py is the one sanctioned time.time site.
    clock = tmp_path / "src" / "repro" / "obs" / "clock.py"
    clock.parent.mkdir(parents=True)
    clock.write_text("import time\n\n\ndef wall_time():\n    return time.time()\n")
    assert lint_file(clock) == []


def test_fas010_monotonic_clocks_are_not_flagged(tmp_path):
    fine = tmp_path / "src" / "uses_monotonic.py"
    fine.parent.mkdir()
    fine.write_text(
        "import time\n\n\ndef duration():\n"
        "    start = time.perf_counter()\n"
        "    return time.perf_counter() - start, time.monotonic()\n"
    )
    assert lint_file(fine) == []


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_only_that_line():
    violations = lint_file(CASES / "pragmas_line.py")
    assert [(v.rule_id, v.line) for v in violations] == [("FAS003", 14)]


def test_disable_all_pragma_suppresses_every_rule_on_the_line():
    source = (CASES / "pragmas_line.py").read_text()
    assert "disable=all" in source  # fixture exercises the wildcard
    violations = lint_file(CASES / "pragmas_line.py")
    assert all(v.rule_id != "FAS004" for v in violations)


def test_file_pragma_suppresses_whole_file():
    assert lint_file(CASES / "pragmas_file.py") == []


def test_decorator_pragma_covers_the_decorated_def():
    # A pragma can only live on the decorator line, but FAS004 reports on
    # the def line below it — the engine must carry the pragma down.
    violations = lint_file(CASES / "pragmas_decorator.py")
    assert [(v.rule_id, v.line) for v in violations] == [("FAS004", 28)]


def test_decorator_pragma_does_not_leak_past_the_definition(tmp_path):
    # The carried pragma covers the decorated def's line only — a second,
    # undecorated definition further down still fires.
    bad = tmp_path / "two_defs.py"
    bad.write_text(
        "def tagged(func):\n"
        "    return func\n"
        "\n"
        "\n"
        "@tagged  # fasealint: disable=FAS004\n"
        "def covered(bucket={}):\n"
        "    return bucket\n"
        "\n"
        "\n"
        "def uncovered(bucket={}):\n"
        "    return bucket\n"
    )
    assert [(v.rule_id, v.line) for v in lint_file(bad)] == [("FAS004", 10)]


def test_pragma_inside_string_literal_does_not_suppress(tmp_path):
    bad = tmp_path / "src" / "doc_pragma.py"
    bad.parent.mkdir()
    bad.write_text(
        '"""Docs may mention `# fasealint: disable-file=all` safely."""\n'
        "def f(x):\n"
        "    assert x\n"
    )
    assert [v.rule_id for v in lint_file(bad)] == ["FAS008"]


# ----------------------------------------------------------------------
# Golden JSON report
# ----------------------------------------------------------------------
def test_golden_json_report_matches():
    violations = lint_paths([CASES])
    rendered = render_json(violations, base=CASES)
    expected = (FIXTURES / "expected.json").read_text()
    assert rendered == expected


def test_json_report_shape():
    violations = lint_paths([CASES])
    payload = json.loads(render_json(violations, base=CASES))
    assert payload["version"] == 1
    assert payload["count"] == len(violations) == len(payload["violations"])
    assert payload["by_rule"] == summarize(violations)
    assert set(payload["by_rule"]) == set(ALL_RULES)  # every rule exercised
    for entry in payload["violations"]:
        assert set(entry) == {"path", "line", "col", "rule", "message"}
        assert "\\" not in entry["path"]  # POSIX-relative for portability


# ----------------------------------------------------------------------
# Parallel lint (--jobs)
# ----------------------------------------------------------------------
def test_lint_paths_jobs_is_byte_identical_to_serial():
    serial = render_json(lint_paths([CASES]), base=CASES)
    parallel = render_json(lint_paths([CASES], jobs=4), base=CASES)
    assert parallel == serial


def test_lint_paths_jobs_one_stays_inline():
    # jobs=1 must not spin up workers (same code path as the default).
    assert lint_paths([CASES], jobs=1) == lint_paths([CASES])


def test_cli_lint_jobs_flag(capsys):
    assert cli_main(["lint", "--jobs", "4", str(CASES / "clean.py")]) == 0
    assert "no violations" in capsys.readouterr().out
    serial_code = cli_main(["lint", str(CASES)])
    serial_out = capsys.readouterr().out
    parallel_code = cli_main(["lint", "--jobs", "4", str(CASES)])
    parallel_out = capsys.readouterr().out
    assert parallel_code == serial_code == 1
    assert parallel_out == serial_out


# ----------------------------------------------------------------------
# Config filtering + parse errors
# ----------------------------------------------------------------------
def test_select_restricts_rules():
    violations = lint_paths([CASES], LintConfig(select=("FAS003",)))
    assert violations and {v.rule_id for v in violations} == {"FAS003"}


def test_ignore_removes_rules():
    violations = lint_paths([CASES], LintConfig(ignore=("FAS003", "FAS007")))
    assert {"FAS003", "FAS007"}.isdisjoint({v.rule_id for v in violations})


def test_rng_whitelist_exempts_fas001():
    config = LintConfig(
        select=("FAS001",), rng_whitelist=("fas001_global_random.py",)
    )
    assert lint_paths([CASES], config) == []


def test_parse_error_reports_fas000(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    violations = lint_file(broken)
    assert [v.rule_id for v in violations] == [PARSE_ERROR_ID]
    assert "could not parse" in violations[0].message


def test_parse_error_is_not_suppressible(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("# fasealint: disable-file=all\ndef oops(:\n")
    assert [v.rule_id for v in lint_file(broken)] == [PARSE_ERROR_ID]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_lint_exit_codes(capsys):
    assert cli_main(["lint", str(CASES / "clean.py")]) == 0
    assert "no violations" in capsys.readouterr().out
    assert cli_main(["lint", str(CASES / "fas003_float_eq.py")]) == 1
    out = capsys.readouterr().out
    assert "FAS003" in out and "violation(s) total" in out


def test_cli_lint_json_format(capsys):
    assert cli_main(["lint", "--format", "json", str(CASES / "clean.py")]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"version": 1, "count": 0, "by_rule": {}, "violations": []}


def test_cli_lint_unknown_rule_is_usage_error(capsys):
    assert cli_main(["lint", "--select", "FAS999", str(CASES)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_lint_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULES:
        assert rule_id in out


def test_cli_lint_select_ignore_roundtrip(capsys):
    code = cli_main(
        ["lint", "--select", "FAS003,FAS004", "--ignore", "FAS004", str(CASES)]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "FAS003" in out and "FAS004" not in out


# ----------------------------------------------------------------------
# Self-check: the repository's own code is lint-clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tree", ["src", "benchmarks", "examples"])
def test_repository_tree_is_lint_clean(tree):
    violations = lint_paths([REPO_ROOT / tree])
    assert violations == [], render_text(violations)


def test_repository_src_has_no_asserts():
    # FAS008's promise, stated directly: src/ raises, never asserts.
    violations = lint_paths([REPO_ROOT / "src"], LintConfig(select=("FAS008",)))
    assert violations == []


def test_cli_entry_point_subprocess():
    # `python -m repro lint` mirrors the installed `fasea lint` script.
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(REPO_ROOT / "src")],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "no violations" in result.stdout
