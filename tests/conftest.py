"""Shared fixtures for the FASEA reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.damai import DamaiDataset, load_damai
from repro.datasets.synthetic import SyntheticConfig, SyntheticWorld, build_world
from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.events import EventStore
from repro.ebsn.users import User


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> SyntheticConfig:
    """A tiny Table 4 instance for fast unit tests."""
    return SyntheticConfig(
        num_events=12,
        horizon=200,
        dim=4,
        capacity_mean=8.0,
        capacity_std=3.0,
        conflict_ratio=0.25,
        seed=0,
    )


@pytest.fixture
def small_world(small_config: SyntheticConfig) -> SyntheticWorld:
    return build_world(small_config)


@pytest.fixture
def simple_store() -> EventStore:
    return EventStore.from_capacities([2, 1, 3, 1])


@pytest.fixture
def simple_conflicts():
    # 0-1 and 2-3 conflict.
    return ConflictGraph(4, [(0, 1), (2, 3)])


@pytest.fixture
def simple_user() -> User:
    return User(user_id=0, capacity=2)


@pytest.fixture(scope="session")
def damai() -> DamaiDataset:
    """The canonical Damai-like dataset (built once per session)."""
    return load_damai()
