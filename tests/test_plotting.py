"""ASCII chart rendering."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.plotting import ascii_chart, chart_for_metric


def test_chart_contains_glyphs_and_legend():
    text = ascii_chart(
        {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
        steps=[1, 2, 3, 4],
        width=20,
        height=6,
    )
    assert "*" in text and "o" in text
    assert "legend: *=up  o=down" in text
    assert "t=1" in text and "t=4" in text


def test_chart_y_axis_labels():
    text = ascii_chart({"a": [2.0, 10.0]}, width=10, height=5)
    lines = text.splitlines()
    assert lines[0].strip().startswith("10")
    assert lines[4].strip().startswith("2")


def test_rising_series_ends_in_the_top_row():
    text = ascii_chart({"a": [0, 1, 2, 3, 4]}, width=10, height=5)
    top_row = text.splitlines()[0]
    assert top_row.rstrip().endswith("*")


def test_nan_values_are_skipped():
    text = ascii_chart(
        {"a": [0.0, 1.0, float("nan"), float("nan")]}, width=12, height=4
    )
    assert "*" in text  # finite prefix still drawn


def test_constant_series_renders():
    text = ascii_chart({"a": [5.0, 5.0, 5.0]}, width=12, height=4)
    assert "*" in text


def test_validation():
    with pytest.raises(ConfigurationError):
        ascii_chart({})
    with pytest.raises(ConfigurationError):
        ascii_chart({"a": [1]}, width=20, height=5)
    with pytest.raises(ConfigurationError):
        ascii_chart({"a": [1, 2], "b": [1, 2, 3]})
    with pytest.raises(ConfigurationError):
        ascii_chart({"a": [1, 2]}, width=2, height=2)
    with pytest.raises(ConfigurationError):
        ascii_chart({"a": [1, 2]}, steps=[1])
    with pytest.raises(ConfigurationError):
        ascii_chart({"a": [float("nan")] * 3})


def test_chart_for_metric_limits_series():
    series = {f"s{i}": [0.0, float(i)] for i in range(10)}
    text = chart_for_metric("accept_ratio", series, [1, 2], max_series=3)
    assert "[accept_ratio]" in text
    assert "s2" in text
    assert "s9" not in text


def test_report_with_charts_renders(small_world):
    """End-to-end: a rendered experiment report embeds a chart."""
    from repro.experiments.figures import figure1
    from repro.experiments.reporting import render_result

    result = figure1(horizon=150)
    text = render_result(result)
    assert "[accept_ratio]" in text
    assert "legend:" in text
