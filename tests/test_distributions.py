"""Table 4 value distributions and normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.distributions import (
    Normal,
    Power,
    Shuffle,
    Uniform,
    distribution_from_name,
    sample_capacities,
    sample_unit_theta,
    unit_normalize_rows,
)
from repro.exceptions import ConfigurationError
from repro.linalg.sampling import make_rng


def test_uniform_range():
    draws = Uniform().sample(make_rng(0), 10_000)
    assert draws.min() >= -1.0 and draws.max() <= 1.0
    assert abs(draws.mean()) < 0.05


def test_uniform_validation():
    with pytest.raises(ConfigurationError):
        Uniform(low=1.0, high=0.0)


def test_normal_moments():
    draws = Normal(mean=2.0, std=0.5).sample(make_rng(0), 20_000)
    assert draws.mean() == pytest.approx(2.0, abs=0.02)
    assert draws.std() == pytest.approx(0.5, abs=0.02)


def test_normal_validation():
    with pytest.raises(ConfigurationError):
        Normal(std=0.0)


def test_power_concentrates_near_one():
    """The paper: Power values are 'generally large (closer to 1)'."""
    draws = Power(exponent=2.0).sample(make_rng(0), 20_000)
    assert draws.min() >= 0.0 and draws.max() <= 1.0
    # Density (a+1) x^a with a=2 has mean (a+1)/(a+2) = 0.75.
    assert draws.mean() == pytest.approx(0.75, abs=0.02)


def test_power_validation():
    with pytest.raises(ConfigurationError):
        Power(exponent=-1.0)


def test_shuffle_cycles_per_dimension():
    """1st, 4th, ... uniform; 2nd normal mean 2/d; 3rd, 6th, ... power."""
    shuffle = Shuffle(dim=6)
    assert isinstance(shuffle.spec_for_dimension(0), Uniform)
    normal = shuffle.spec_for_dimension(1)
    assert isinstance(normal, Normal)
    assert normal.mean == pytest.approx(2 / 6)
    assert isinstance(shuffle.spec_for_dimension(2), Power)
    assert isinstance(shuffle.spec_for_dimension(3), Uniform)


def test_shuffle_sample_shape_and_marginals():
    shuffle = Shuffle(dim=3)
    draws = shuffle.sample(make_rng(0), (5000, 3))
    assert draws.shape == (5000, 3)
    assert draws[:, 0].min() >= -1.0  # uniform dimension
    assert draws[:, 2].min() >= 0.0  # power dimension


def test_shuffle_validation():
    with pytest.raises(ConfigurationError):
        Shuffle(dim=0)
    with pytest.raises(ConfigurationError):
        Shuffle(dim=3).sample(make_rng(0), (5, 4))
    with pytest.raises(ConfigurationError):
        Shuffle(dim=3).spec_for_dimension(3)


@pytest.mark.parametrize(
    "name,expected",
    [("uniform", Uniform), ("normal", Normal), ("power", Power), ("shuffle", Shuffle)],
)
def test_distribution_from_name(name, expected):
    assert isinstance(distribution_from_name(name, dim=4), expected)


def test_distribution_from_name_rejects_unknown():
    with pytest.raises(ConfigurationError):
        distribution_from_name("zipf", dim=4)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 10),
    cols=st.integers(1, 10),
    seed=st.integers(0, 1000),
)
def test_unit_normalize_rows_yields_unit_norms(rows, cols, seed):
    matrix = np.random.default_rng(seed).normal(size=(rows, cols))
    normalized = unit_normalize_rows(matrix)
    norms = np.linalg.norm(normalized, axis=1)
    assert np.all((np.abs(norms - 1.0) < 1e-12) | (norms == 0.0))


def test_unit_normalize_keeps_zero_rows_zero():
    matrix = np.array([[0.0, 0.0], [3.0, 4.0]])
    normalized = unit_normalize_rows(matrix)
    assert np.allclose(normalized[0], 0.0)
    assert np.allclose(normalized[1], [0.6, 0.8])


@pytest.mark.parametrize("name", ["uniform", "normal", "power"])
def test_sample_unit_theta_has_unit_norm(name):
    theta = sample_unit_theta(distribution_from_name(name, 8), 8, seed=3)
    assert np.linalg.norm(theta) == pytest.approx(1.0)
    assert theta.shape == (8,)


def test_sample_capacities_properties():
    capacities = sample_capacities(1000, mean=100.0, std=100.0, seed=0)
    assert capacities.min() >= 1.0
    assert np.all(capacities == np.rint(capacities))
    assert 80 < capacities.mean() < 130  # clamping shifts the mean up a bit


def test_sample_capacities_validation():
    with pytest.raises(ConfigurationError):
        sample_capacities(0, 10, 1)
    with pytest.raises(ConfigurationError):
        sample_capacities(5, -1, 1)
    with pytest.raises(ConfigurationError):
        sample_capacities(5, 10, 0)
