#!/usr/bin/env python
"""Quickstart: run all five FASEA policies on the default synthetic setting.

This is the smallest end-to-end use of the public API: build a world
from Table 4's (scaled) defaults, play each policy for a few thousand
rounds with common random numbers, and compare accept ratios and regret
against the clairvoyant OPT strategy.

Run with::

    python examples/quickstart.py
"""

from repro import (
    OptPolicy,
    SyntheticConfig,
    build_world,
    make_policy,
    run_policy,
    summarize,
)

HORIZON = 5000


def main() -> None:
    config = SyntheticConfig.scaled_default(seed=42)
    world = build_world(config)
    print(
        f"World: |V|={config.num_events}, d={config.dim}, "
        f"cr={config.conflict_ratio}, c_v~N({config.capacity_mean:g},"
        f"{config.capacity_std:g})"
    )

    # OPT knows the true theta; every policy is measured against it on
    # the same random streams (same users, contexts, and coin flips).
    opt_history = run_policy(OptPolicy(world.theta), world, horizon=HORIZON)

    print(f"\n{'policy':<10} {'accept_ratio':>12} {'total_reward':>12} "
          f"{'regret':>8} {'ms/round':>9}")
    for name in ("UCB", "TS", "eGreedy", "Exploit", "Random"):
        policy = make_policy(name, dim=config.dim, seed=7)
        history = run_policy(policy, world, horizon=HORIZON)
        summary = summarize(history, opt_history)
        print(
            f"{name:<10} {summary.overall_accept_ratio:>12.3f} "
            f"{summary.total_reward:>12.0f} {summary.total_regret:>8.0f} "
            f"{summary.avg_round_time * 1000:>9.3f}"
        )
    print(
        f"{'OPT':<10} {opt_history.overall_accept_ratio:>12.3f} "
        f"{opt_history.total_reward:>12.0f} {'0':>8}"
    )
    print(
        "\nExpected (paper's headline): UCB and Exploit lead, eGreedy close, "
        "TS barely beats Random."
    )


if __name__ == "__main__":
    main()
