#!/usr/bin/env python
"""Multi-seed replication with confidence intervals and a run store.

The paper reports single runs; this example re-runs the default-setting
comparison across several seeds, attaches bootstrap confidence
intervals to each policy's accept ratio, logs everything into a SQLite
run store, and checks the headline claims *dominance-style*: does UCB
beat TS on every single seed?

Run with::

    python examples/replication_study.py [num_seeds]
"""

import sys

from repro.analysis import replicate_policies
from repro.analysis.convergence import detect_plateau
from repro.bandits import OptPolicy
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.experiments.reporting import format_table
from repro.io import RunStore
from repro.simulation.runner import run_policy

HORIZON = 3000


def main(num_seeds: int = 5) -> None:
    config = SyntheticConfig.scaled_default().with_overrides(horizon=HORIZON)
    print(f"Replicating the default setting across {num_seeds} seeds "
          f"(T={HORIZON}, |V|={config.num_events}, d={config.dim}) ...")

    with RunStore() as store:
        result = replicate_policies(
            config,
            seeds=range(num_seeds),
            horizon=HORIZON,
            store=store,
            experiment="default-replication",
        )
        rows = []
        for policy, mean, low, high, regret in result.summary_rows():
            rows.append(
                [
                    policy,
                    f"{mean:.3f}",
                    f"[{low:.3f}, {high:.3f}]",
                    "-" if regret is None else f"{regret:.0f}",
                ]
            )
        print()
        print(format_table(["policy", "accept_ratio", "95% CI", "mean_regret"], rows))

        print("\nDominance across seeds (the paper's claims, seed by seed):")
        for better, worse in [("UCB", "TS"), ("Exploit", "TS"), ("TS", "Random")]:
            verdict = result.dominates(better, worse)
            print(f"  {better} > {worse} on every seed: {verdict}")

        print("\nStored runs:", store.count_runs())
        stats = store.policy_statistics("default-replication")
        ucb = stats["UCB"]
        print(
            f"SQL aggregate for UCB: n={ucb['count']:.0f}, accept ratio in "
            f"[{ucb['min_accept_ratio']:.3f}, {ucb['max_accept_ratio']:.3f}]"
        )

    # Bonus: locate the capacity-exhaustion plateau on one seed.
    world = build_world(config)
    opt_history = run_policy(OptPolicy(world.theta), world, horizon=HORIZON)
    plateau = detect_plateau(
        opt_history.cumulative_rewards(), window=200, tolerance=0.01
    )
    if plateau is None:
        print("\nOPT never plateaus at this horizon (capacities outlast users).")
    else:
        print(
            f"\nOPT's cumulative reward plateaus at t={plateau} "
            f"({plateau / HORIZON:.0%} of the horizon) - the step where the "
            "paper's regret curves drop."
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
