#!/usr/bin/env python
"""Record one input trace, replay many policies against it — exactly.

Common random numbers guarantee paired comparisons *within* a process;
a recorded trace extends the guarantee across processes and time.  This
example records the full input stream of a default-setting run (users,
context matrices, acceptance coin flips), saves it to disk, reloads it,
and replays four policies on the identical stream.  It then proves the
point: the replayed UCB run matches a live ``run_policy`` call on the
same seed step for step.

Run with::

    python examples/trace_record_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SyntheticConfig, build_world, make_policy, run_policy
from repro.simulation.trace import Trace, record_trace, replay_trace

HORIZON = 1500


def main() -> None:
    config = SyntheticConfig.scaled_default(seed=21)
    world = build_world(config)

    print(f"Recording a trace: T={HORIZON}, |V|={config.num_events}, "
          f"d={config.dim} ...")
    trace = record_trace(world, horizon=HORIZON, run_seed=4)
    with tempfile.TemporaryDirectory() as tmp:
        path = trace.save(Path(tmp) / "default_run")
        size_mb = path.stat().st_size / (1024 * 1024)
        print(f"Saved to {path.name} ({size_mb:.1f} MB compressed)")
        loaded = Trace.load(path)

    print(f"\n{'policy':<10} {'accept_ratio':>12} {'total_reward':>12}")
    for name in ("UCB", "TS", "Exploit", "Random"):
        policy = make_policy(name, dim=config.dim, seed=7)
        history = replay_trace(policy, loaded)
        print(
            f"{name:<10} {history.overall_accept_ratio:>12.3f} "
            f"{history.total_reward:>12.0f}"
        )

    # The defining property: replay == live run on the same seed.
    live = run_policy(
        make_policy("UCB", dim=config.dim, seed=7),
        world,
        horizon=HORIZON,
        run_seed=4,
    )
    replayed = replay_trace(make_policy("UCB", dim=config.dim, seed=7), loaded)
    identical = np.array_equal(live.rewards, replayed.rewards)
    print(f"\nReplay identical to a live run on the same seed: {identical}")


if __name__ == "__main__":
    main()
