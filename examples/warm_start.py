#!/usr/bin/env python
"""Checkpointing and (negative) transfer with saved policy state.

Two lessons in one script, both using :mod:`repro.io.policy_state`:

1. **Checkpoint/resume** — train UCB on a real user for 500 rounds,
   save the ridge statistics, restore them into a fresh policy, and
   continue: the resumed model is immediately at its trained accept
   ratio while a cold model starts over.

2. **Negative transfer** — restore statistics pretrained on an
   *unrelated* synthetic world instead.  The transplanted model is
   confidently wrong: its confidence ellipsoid is tight around a theta
   this user does not have, so the UCB bonus that normally rescues a
   cold start is muted, and early performance is *worse* than starting
   cold.  Warm starts only help when the source distribution matches.

Run with::

    python examples/warm_start.py
"""

import tempfile
from pathlib import Path

from repro import SyntheticConfig, build_world, run_policy
from repro.bandits import UcbPolicy
from repro.datasets.damai import load_damai
from repro.io.policy_state import load_policy_state, save_policy_state
from repro.simulation.realdata import run_real_policy

PRETRAIN_ROUNDS = 500
DEPLOY_ROUNDS = 200
CHECKPOINTS = (25, 50, 100, 200)


def deploy(policy, dataset, user):
    history = run_real_policy(policy, dataset, user, 5, DEPLOY_ROUNDS)
    return history.accept_ratio_at(CHECKPOINTS)


def main() -> None:
    dataset = load_damai()
    user = dataset.users[1]
    print(f"Target: real user u{user.user_id + 1}, c_u = 5, "
          f"{DEPLOY_ROUNDS} deployment rounds\n")

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Checkpoint: train on this very user, save, restore, resume.
        trained = UcbPolicy(dim=dataset.dim)
        run_real_policy(trained, dataset, user, 5, PRETRAIN_ROUNDS)
        matched_path = save_policy_state(trained, Path(tmp) / "matched")
        resumed = load_policy_state(UcbPolicy(dim=dataset.dim), matched_path)

        # 2. Negative transfer: pretrain on an unrelated synthetic world.
        foreign = UcbPolicy(dim=dataset.dim)
        foreign_world = build_world(
            SyntheticConfig.scaled_default(seed=8, dim=dataset.dim)
        )
        run_policy(foreign, foreign_world, horizon=2000)
        foreign_path = save_policy_state(foreign, Path(tmp) / "foreign")
        transplanted = load_policy_state(UcbPolicy(dim=dataset.dim), foreign_path)

        cold = UcbPolicy(dim=dataset.dim)
        rows = [
            ("resumed (same user)", deploy(resumed, dataset, user)),
            ("cold start", deploy(cold, dataset, user)),
            ("foreign pretrain", deploy(transplanted, dataset, user)),
        ]

    header = f"{'model':<22}" + "".join(f" t={t:>4}" for t in CHECKPOINTS)
    print(header)
    for label, ratios in rows:
        print(f"{label:<22}" + "".join(f" {r:>6.2f}" for r in ratios))

    print(
        "\nResumed >> cold from round one (checkpointing works); foreign "
        "pretraining is confidently wrong and can underperform even a cold "
        "start — warm starts need a matching source distribution."
    )


if __name__ == "__main__":
    main()
