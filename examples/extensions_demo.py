#!/usr/bin/env python
"""The paper's Remark 1 and Remark 2 extensions in action.

Remark 1 — per-user models: three returning users with *different*
tastes share one platform.  A single shared model must average their
conflicting preferences; a :class:`PerUserPolicyPool` learns one theta
per user and wins.

Remark 2 — time-varying event sets: the catalogue rotates (weekday
events vs weekend events); policies only ever see the active subset but
keep one shared model across phases.

Run with::

    python examples/extensions_demo.py
"""

import numpy as np

from repro.bandits import RoundView, UcbPolicy, make_policy
from repro.datasets.synthetic import SyntheticConfig, build_world
from repro.ebsn.platform import Platform
from repro.ebsn.users import User
from repro.extensions import DynamicEventSchedule, PerUserPolicyPool, run_dynamic_policy
from repro.linalg.sampling import make_rng


def per_user_demo(seed: int = 99) -> None:
    """Three users with opposed tastes: shared model vs per-user pool."""
    config = SyntheticConfig.scaled_default(seed=3, dim=8)
    world = build_world(config)
    rng = make_rng(seed)
    # Three opposed true preference vectors.
    thetas = [world.theta, -world.theta, np.roll(world.theta, 3)]
    sampler = world.make_context_sampler()

    def play(policy, label: str) -> None:
        platform = Platform(world.make_store(), world.conflicts)
        local_rng = make_rng(1234)
        accepted = arranged = 0
        for t in range(1, 3001):
            user_id = (t - 1) % 3
            user = User(user_id=user_id, capacity=3)
            contexts = sampler.sample(local_rng)
            view = RoundView(
                time_step=t,
                user=user,
                contexts=contexts,
                remaining_capacities=platform.store.remaining_capacities,
                conflicts=platform.conflicts,
            )
            arrangement = policy.select(view)
            probabilities = np.clip(contexts @ thetas[user_id], 0.0, 1.0)
            thresholds = local_rng.uniform(size=len(contexts))
            entry = platform.commit(
                user,
                arrangement,
                feedback=lambda e: bool(thresholds[e] < probabilities[e]),
            )
            policy.observe(
                view,
                arrangement,
                [1.0 if e in set(entry.accepted) else 0.0 for e in arrangement],
            )
            accepted += entry.reward
            arranged += len(arrangement)
        print(f"  {label:<22} accept ratio {accepted / arranged:.3f}")

    print("Remark 1 - per-user models (3 users with opposed tastes):")
    play(UcbPolicy(dim=config.dim), "shared UCB model")
    play(
        PerUserPolicyPool(lambda user_id: UcbPolicy(dim=config.dim)),
        "per-user UCB pool",
    )


def dynamic_events_demo() -> None:
    """Rotating weekday/weekend catalogues (Remark 2)."""
    config = SyntheticConfig.scaled_default(seed=5)
    world = build_world(config)
    schedule = DynamicEventSchedule.round_robin(
        num_events=config.num_events, num_phases=2, phase_length=50
    )
    print("\nRemark 2 - rotating event sets (2 phases of 50 rounds):")
    for name in ("UCB", "Random"):
        policy = make_policy(name, dim=config.dim, seed=4)
        history = run_dynamic_policy(policy, world, schedule, horizon=4000)
        print(
            f"  {name:<10} accept ratio {history.overall_accept_ratio:.3f} "
            f"total reward {history.total_reward:.0f}"
        )


if __name__ == "__main__":
    per_user_demo()
    dynamic_events_demo()
