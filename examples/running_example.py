#!/usr/bin/env python
"""The paper's running example (Examples 1-3, Table 2).

Four events — football (v1), basketball (v2), concert (v3), BBQ (v4) —
with v1 conflicting with v2.  A user who wants two weekend events logs
in; features are the hand-set values of Table 2.  We walk one TS round
and one UCB round explicitly, printing estimated rewards and the
arrangement Oracle-Greedy produces, mirroring the narrative of
Examples 2 and 3.

Run with::

    python examples/running_example.py
"""

import numpy as np

from repro.bandits import ThompsonSamplingPolicy, UcbPolicy
from repro.bandits.base import RoundView
from repro.ebsn.conflicts import ConflictGraph
from repro.ebsn.users import User

EVENT_NAMES = ("v1 football", "v2 basketball", "v3 concert", "v4 BBQ")

# Table 2 of the paper.
ROUND1_FEATURES = np.array(
    [
        [0.1, 0.0, 0.5, 0.2],
        [0.2, 0.1, 0.0, 0.1],
        [0.2, 0.3, 0.0, 0.2],
        [0.0, 0.0, 1.0, 0.0],
    ]
)
ROUND2_FEATURES = np.array(
    [
        [0.2, 0.1, 0.2, 0.1],
        [0.1, 0.2, 0.0, 0.1],
        [0.0, 0.0, 0.0, 0.5],
        [0.2, 0.1, 0.4, 0.0],
    ]
)


def make_view(time_step: int, contexts: np.ndarray, capacity: int) -> RoundView:
    conflicts = ConflictGraph(4, [(0, 1)])  # football conflicts with basketball
    return RoundView(
        time_step=time_step,
        user=User(user_id=time_step, capacity=capacity),
        contexts=contexts,
        remaining_capacities=np.array([10.0, 10.0, 10.0, 10.0]),
        conflicts=conflicts,
    )


def show_round(label: str, scores: np.ndarray, arrangement) -> None:
    print(f"  {label}")
    for name, score in zip(EVENT_NAMES, scores):
        print(f"    {name:<14} estimated reward {score:+.3f}")
    chosen = ", ".join(EVENT_NAMES[i] for i in arrangement)
    print(f"    -> arranged: {chosen}")


def main() -> None:
    print("Thompson Sampling (Example 2): estimates start at the prior, so")
    print("the first sampled theta is pure noise and the arrangement is a")
    print("guess; feedback then sharpens the posterior.\n")
    ts = ThompsonSamplingPolicy(dim=4, seed=0)
    view1 = make_view(1, ROUND1_FEATURES, capacity=2)
    theta_tilde = ts.sample_theta(1)
    scores = ROUND1_FEATURES @ theta_tilde
    arrangement = ts.select(view1)
    show_round("round 1 (c_u=2):", scores, arrangement)
    # The user rejects everything (as in the paper's Example 2).
    ts.observe(view1, arrangement, [0.0] * len(arrangement))
    view2 = make_view(2, ROUND2_FEATURES, capacity=1)
    arrangement2 = ts.select(view2)
    show_round(
        "round 2 (c_u=1):", ts.predicted_scores(ROUND2_FEATURES), arrangement2
    )

    print("\nUCB (Example 3): with no data every event has the same loose")
    print("confidence bonus, so UCB explores the widest-spread contexts.\n")
    ucb = UcbPolicy(dim=4, alpha=2.0)
    view1 = make_view(1, ROUND1_FEATURES, capacity=2)
    bounds = ucb.upper_confidence_bounds(ROUND1_FEATURES)
    arrangement = ucb.select(view1)
    show_round("round 1 (c_u=2):", bounds, arrangement)
    # Suppose the user accepts both, as in Example 3.
    ucb.observe(view1, arrangement, [1.0] * len(arrangement))
    view2 = make_view(2, ROUND2_FEATURES, capacity=1)
    arrangement2 = ucb.select(view2)
    show_round(
        "round 2 (c_u=1):", ucb.upper_confidence_bounds(ROUND2_FEATURES), arrangement2
    )

    print("\nNote how v1 and v2 never appear together: they conflict, and")
    print("Oracle-Greedy blocks the later-visited one (Definition 1).")


if __name__ == "__main__":
    main()
