#!/usr/bin/env python
"""Meetup-like catalogue: arrangement over persistent event profiles.

Unlike Table 4's i.i.d. features, Meetup-style events have stable topic
mixtures — a hiking meetup stays a hiking meetup.  This example builds
a 200-event catalogue with topic/price/distance/reputation features,
runs the FASEA policies against it, and then inspects *which* events
UCB learned to favour: the top of its learned ranking should be
dominated by the topics the true preference vector rewards.

Run with::

    python examples/meetup_catalogue.py
"""

import numpy as np

from repro.bandits import OptPolicy, make_policy
from repro.datasets.meetup import TOPICS, MeetupConfig, build_meetup_world
from repro.simulation import run_policy

HORIZON = 5000


def main() -> None:
    config = MeetupConfig(num_events=200, horizon=HORIZON, seed=11)
    world = build_meetup_world(config)
    favoured = [
        TOPICS[i]
        for i in range(config.num_topics)
        if world.theta[i] > 0.05
    ]
    print(f"Catalogue: {config.num_events} events, {config.num_topics} topics")
    print(f"True favoured topics: {', '.join(favoured)}")

    opt_history = run_policy(OptPolicy(world.theta), world, horizon=HORIZON)
    print(f"\n{'policy':<10} {'accept_ratio':>12} {'regret_vs_OPT':>14}")
    ucb = make_policy("UCB", dim=config.dim, seed=7)
    histories = {}
    for name, policy in [
        ("UCB", ucb),
        ("TS", make_policy("TS", dim=config.dim, seed=7)),
        ("eGreedy", make_policy("eGreedy", dim=config.dim, seed=7)),
        ("Exploit", make_policy("Exploit", dim=config.dim, seed=7)),
        ("Random", make_policy("Random", dim=config.dim, seed=7)),
    ]:
        history = run_policy(policy, world, horizon=HORIZON)
        histories[name] = history
        regret = opt_history.total_reward - history.total_reward
        print(f"{name:<10} {history.overall_accept_ratio:>12.3f} {regret:>14.0f}")

    # Inspect what UCB learned: rank events by its point estimate on the
    # static profiles and show the top five against the true ranking.
    eval_contexts = world.evaluation_contexts()
    learned = ucb.predicted_scores(eval_contexts)
    truth = world.expected_rewards(eval_contexts)
    top_learned = np.argsort(-learned)[:5]
    top_true = np.argsort(-truth)[:5]
    print("\nUCB's top-5 events after learning:")
    for event_id in top_learned:
        print(f"  {world.event_titles[event_id]}")
    print("True top-5 events:")
    for event_id in top_true:
        print(f"  {world.event_titles[event_id]}")
    overlap = len(set(top_learned.tolist()) & set(top_true.tolist()))
    print(f"Overlap: {overlap}/5")


if __name__ == "__main__":
    main()
