#!/usr/bin/env python
"""Real-dataset replay: learn one user's taste from Yes/No feedback.

Reproduces the paper's real-data protocol (Section 5.1): the Damai-like
catalogue of 50 Beijing events is shown to the same user every round
with identical feature vectors; the user answers with deterministic
ground-truth feedback; we watch how quickly each policy's cumulative
accept ratio approaches the Full-Knowledge ceiling — and how Exploit
can lock onto an all-reject arrangement forever while UCB escapes via
its confidence bonus.

Run with::

    python examples/damai_real_data.py [user_index]
"""

import sys

from repro.baselines import OnlineGreedyPolicy
from repro.bandits import make_policy
from repro.datasets.damai import load_damai
from repro.simulation.realdata import (
    full_knowledge_accept_ratio,
    run_real_policy,
)

HORIZON = 1000
CHECKPOINTS = (50, 100, 200, 500, 1000)


def main(user_index: int = 0) -> None:
    dataset = load_damai()
    user = dataset.users[user_index]
    print(
        f"User u{user.user_id + 1}: {user.yes_count} Yes-events out of "
        f"{dataset.num_events}; preferred tags: "
        f"{', '.join(sorted(user.preferred_tags)[:6])}, ..."
    )
    print(f"Conflicting event pairs in catalogue: {dataset.conflicts.num_pairs()}")

    for mode in (5, "full"):
        print(f"\n== c_u = {mode} ==")
        ceiling = full_knowledge_accept_ratio(dataset, user, mode)
        header = f"{'policy':<10}" + "".join(f" t={t:>5}" for t in CHECKPOINTS)
        print(header + "   (Full Knowledge ceiling: " f"{ceiling:.2f})")
        for name in ("UCB", "TS", "eGreedy", "Exploit", "Random"):
            policy = make_policy(name, dim=dataset.dim, seed=3)
            history = run_real_policy(policy, dataset, user, mode, HORIZON)
            ratios = history.accept_ratio_at(CHECKPOINTS)
            print(f"{name:<10}" + "".join(f" {r:>7.2f}" for r in ratios))
        online = OnlineGreedyPolicy(dataset.platform_events(), user.preferred_tags)
        online_history = run_real_policy(online, dataset, user, mode, 1)
        print(
            f"{'Online':<10} {online_history.overall_accept_ratio:>7.2f}"
            "  (fixed tag-based arrangement from [39]; never adapts)"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
